#include "core/logical/plan_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/telemetry_names.h"

namespace unify::core {

namespace {

/// Rerank categories, best first (paper Section V-A).
int DegreeRank(const std::string& degree) {
  if (degree == "fully") return 0;
  if (degree == "partially") return 1;
  return 2;
}

}  // namespace

PlanGenerator::PlanGenerator(const OperatorRegistry* registry,
                             const OperatorMatcher* matcher,
                             llm::LlmClient* llm, Options options)
    : registry_(registry),
      matcher_(matcher),
      llm_(llm),
      options_(options) {}

llm::LlmResult PlanGenerator::CallLlm(llm::LlmCall call,
                                      Result& result) const {
  call.tier = llm::ModelTier::kPlanner;
  llm::LlmResult r = llm_->Call(call);
  result.planning_seconds += r.seconds;
  result.llm_calls += 1;
  // Status contract (llm_client.h): failures are accounted (time/dollars
  // above) and counted; callers see empty fields, which the DFS treats as
  // "this path yields nothing" — a checked absorb, not a silent one.
  if (!r.status.ok()) result.llm_failures += 1;
  return r;
}

StatusOr<PlanGenerator::Result> PlanGenerator::Generate(
    const std::string& query, Trace* trace, SpanId parent) const {
  Result result;
  GenCtx ctx;
  ctx.trace = trace;
  ScopedSpan span(trace, telemetry::kSpanPlanLogical, parent);

  SearchState state;
  state.query = query;
  state.plan.query_text = query;
  state.vars[kDocsVar] = "the document collection";
  state.span = span.id();
  Dfs(std::move(state), 0, ctx, result);

  if (result.plans.empty()) {
    ScopedSpan fallback(trace, telemetry::kSpanPlanFallback, span.id());
    // Error handling (Section V-D): no reduction path fully decomposed the
    // query. The LLM picks one of two strategies for the remainder:
    // (1) a Generate operator over retrieved context (RAG fallback), or
    // (2) LLM-generated code solving the task directly.
    result.used_fallback = true;
    llm::LlmCall choose;
    choose.type = llm::PromptType::kChooseFallbackStrategy;
    choose.fields["query"] = query;
    std::string strategy =
        CallLlm(std::move(choose), result).Get("strategy", "rag");

    LogicalPlan plan;
    plan.query_text = query;
    LogicalNode node;
    node.op_name = "Generate";
    node.args["query"] = query;
    node.args["strategy"] = strategy;
    if (strategy == "rag") node.args["retrieve_k"] = "100";
    node.input_vars = {kDocsVar};
    node.output_var = "V1";
    node.output_desc = "a generated answer";
    node.requires_semantics = true;
    plan.nodes.push_back(std::move(node));
    plan.dag.AddNode();
    plan.answer_var = "V1";
    result.plans.push_back(std::move(plan));
    fallback.AddAttr("strategy", strategy);
  }

  span.AddAttr("plans", static_cast<int64_t>(result.plans.size()));
  span.AddAttr("llm_calls", result.llm_calls);
  span.AddAttr("planning_seconds", result.planning_seconds);
  span.AddAttr("backtracks", result.backtracks);
  span.AddAttr("widenings", result.widenings);
  span.AddAttr("unresolved",
               static_cast<int64_t>(result.unresolved_queries.size()));
  span.AddAttr("used_fallback", result.used_fallback);
  MetricAddCounter(telemetry::kMetricPlanBacktracks, result.backtracks);
  MetricAddCounter(telemetry::kMetricPlanWidenings, result.widenings);
  MetricAddCounter(telemetry::kMetricPlanUnresolved,
                   static_cast<double>(result.unresolved_queries.size()));
  return result;
}

void PlanGenerator::AddNodeWithDeps(SearchState& state, LogicalNode node,
                                    Result& result) const {
  int new_id = state.plan.dag.AddNode();
  state.plan.nodes.push_back(node);
  UNIFY_CHECK(state.plan.nodes.size() == state.plan.dag.size());

  // Dependency check (Section V-C): walk preceding operators in reverse.
  // A predecessor that already reaches a confirmed prerequisite is a
  // prerequisite by transitivity — no LLM call needed. Otherwise ask the
  // LLM whether its output feeds this operator, and add a direct edge.
  std::vector<int> confirmed;
  const std::string inputs = StrJoin(node.input_vars, ",");
  for (int i = new_id - 1; i >= 0; --i) {
    bool transitive = false;
    for (int p : confirmed) {
      if (state.plan.dag.Reaches(i, p)) {
        transitive = true;
        break;
      }
    }
    if (transitive) continue;
    llm::LlmCall call;
    call.type = llm::PromptType::kDependencyCheck;
    call.fields["producer_output"] = state.plan.nodes[i].output_var;
    call.fields["consumer_inputs"] = inputs;
    llm::LlmResult r = CallLlm(std::move(call), result);
    if (r.Get("depends") == "true") {
      confirmed.push_back(i);
      UNIFY_CHECK_OK(state.plan.dag.AddEdge(i, new_id));
    }
  }
}

void PlanGenerator::Dfs(SearchState state, int depth, GenCtx& ctx,
                        Result& result) const {
  if (static_cast<int>(result.plans.size()) >= options_.n_c) return;
  if (depth > options_.max_steps) return;
  if (result.llm_calls > options_.max_llm_calls) return;

  // --- End of reduction (Section V-B) ---
  {
    llm::LlmCall call;
    call.type = llm::PromptType::kSimpleQuestion;
    call.fields["query"] = state.query;
    llm::LlmResult r = CallLlm(std::move(call), result);
    if (r.Get("final") == "true") {
      if (state.plan.nodes.empty()) return;  // nothing to execute
      std::string final_var = r.Get("final_var");
      state.plan.answer_var =
          final_var.empty() ? state.plan.nodes.back().output_var : final_var;
      if (ctx.seen_signatures.insert(state.plan.Signature()).second) {
        result.plans.push_back(state.plan);
      }
      return;
    }
  }

  // --- Semantic parsing + operator matching stage 1 (Section V-A) ---
  std::string query_lr;
  {
    llm::LlmCall call;
    call.type = llm::PromptType::kSemanticParse;
    call.fields["query"] = state.query;
    query_lr = CallLlm(std::move(call), result).Get("lr", state.query);
  }
  auto matches = matcher_->TopK(query_lr, static_cast<size_t>(options_.k));
  if (matches.empty()) return;
  size_t first_round = matches.size();

  // --- Stage 2: LLM reranking with the available-variable set ---
  std::vector<std::string> degrees(matches.size(), "not");
  if (options_.use_rerank) {
    llm::LlmCall call;
    call.type = llm::PromptType::kRerankOperators;
    call.fields["query"] = state.query;
    std::string vars;
    for (const auto& [name, desc] : state.vars) {
      vars += name + ": " + desc + "\n";
    }
    call.fields["variables"] = vars;
    for (const auto& m : matches) call.items.push_back(m.op_name);
    llm::LlmResult r = CallLlm(std::move(call), result);
    for (size_t i = 0; i < r.items.size() && i < matches.size(); ++i) {
      auto parts = StrSplit(r.items[i], '\t');
      if (parts.size() == 2) degrees[i] = parts[1];
    }
  }
  std::vector<size_t> order(matches.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int ra = DegreeRank(degrees[a]);
    int rb = DegreeRank(degrees[b]);
    if (ra != rb) return ra < rb;
    return matches[a].distance < matches[b].distance;
  });

  // --- Query reduction over ranked candidates, with branch budget τ ---
  int branch_budget = std::max(
      1, static_cast<int>(std::ceil(options_.tau *
                                    static_cast<double>(matches.size()))));
  int branches_tried = 0;
  bool widened = false;

retry_with_wider_candidates:
  for (size_t idx : order) {
    // Once at least one plan exists, τ limits how many alternatives each
    // search node explores (diversity vs. depth, Section V-D).
    if (branches_tried >= branch_budget && !result.plans.empty()) break;
    if (static_cast<int>(result.plans.size()) >= options_.n_c) return;
    if (result.llm_calls > options_.max_llm_calls) return;
    const std::string& op_name = matches[idx].op_name;

    for (int variant = 0; variant < options_.max_variants; ++variant) {
      llm::LlmCall call;
      call.type = llm::PromptType::kReduceQuery;
      call.fields["query"] = state.query;
      call.fields["operator"] = op_name;
      call.fields["variant"] = std::to_string(variant);
      call.fields["next_var"] =
          "V" + std::to_string(state.var_counter + 1);
      llm::LlmResult r = CallLlm(std::move(call), result);
      if (r.Get("applicable") != "true") break;
      ++branches_tried;

      // Available-variable gating (Section V-A): every input must already
      // be a known variable.
      std::vector<std::string> inputs = StrSplit(r.Get("inputs"), ',');
      bool inputs_ok = true;
      for (const auto& in : inputs) {
        if (state.vars.count(in) == 0) inputs_ok = false;
      }
      if (!inputs_ok) continue;

      LogicalNode node;
      node.op_name = r.Get("op", op_name);
      node.input_vars = inputs;
      node.output_var = "V" + std::to_string(state.var_counter + 1);
      node.output_desc = r.Get("output_desc");
      node.requires_semantics = r.Get("requires_semantics") == "true";
      for (const auto& [key, value] : r.fields) {
        if (StartsWith(key, "arg.")) node.args[key.substr(4)] = value;
      }

      const size_t plans_before = result.plans.size();
      ScopedSpan step(ctx.trace, telemetry::kSpanPlanReduce, state.span);
      step.AddAttr("op", node.op_name);
      step.AddAttr("depth", depth);
      step.AddAttr("variant", variant);
      step.AddAttr("output_var", node.output_var);
      MetricAddCounter(telemetry::kMetricPlanReductions);

      SearchState child = state;
      child.var_counter += 1;
      child.query = r.Get("reduced_query");
      child.vars[node.output_var] = node.output_desc;
      child.span = step.id();
      AddNodeWithDeps(child, std::move(node), result);
      Dfs(std::move(child), depth + 1, ctx, result);
      // Backtrack accounting: a reduction whose whole subtree produced no
      // new complete plan was searched in vain.
      if (result.plans.size() == plans_before) {
        result.backtracks += 1;
        step.AddAttr("backtracked", true);
      }
      if (static_cast<int>(result.plans.size()) >= options_.n_c) return;
      if (branches_tried >= branch_budget && !result.plans.empty()) break;
    }
  }

  // Error handling (Section V-D): if none of the embedding candidates
  // could reduce the query, widen the candidate set once before giving up
  // on this branch.
  if (branches_tried == 0 && !widened &&
      result.llm_calls <= options_.max_llm_calls) {
    widened = true;
    result.widenings += 1;
    matches = matcher_->TopK(query_lr, static_cast<size_t>(options_.k) * 4);
    if (matches.size() > first_round) {
      // Rerank only the new tail (the head was already judged "not").
      std::vector<OperatorMatcher::Match> tail(
          matches.begin() + static_cast<long>(first_round), matches.end());
      llm::LlmCall call;
      call.type = llm::PromptType::kRerankOperators;
      call.fields["query"] = state.query;
      for (const auto& m : tail) call.items.push_back(m.op_name);
      llm::LlmResult r = CallLlm(std::move(call), result);
      matches = std::move(tail);
      degrees.assign(matches.size(), "not");
      for (size_t i = 0; i < r.items.size() && i < matches.size(); ++i) {
        auto parts = StrSplit(r.items[i], '\t');
        if (parts.size() == 2) degrees[i] = parts[1];
      }
      order.resize(matches.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        int ra = DegreeRank(degrees[a]);
        int rb = DegreeRank(degrees[b]);
        if (ra != rb) return ra < rb;
        return matches[a].distance < matches[b].distance;
      });
      branch_budget = static_cast<int>(matches.size());
      goto retry_with_wider_candidates;
    }
  }

  // Dead end even after widening: collect the unreduced query state so
  // operators tailored to it can be added later (Section V-D).
  if (branches_tried == 0) {
    result.unresolved_queries.push_back(state.query);
  }
}

}  // namespace unify::core
