#include "core/logical/logical_plan.h"

#include <sstream>

#include "common/string_util.h"

namespace unify::core {

std::string LogicalPlan::DebugString() const {
  std::ostringstream os;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const auto& n = nodes[i];
    if (i) os << "; ";
    os << n.op_name << "(";
    bool first = true;
    for (const auto& [k, v] : n.args) {
      if (!first) os << ", ";
      os << k << "=" << v;
      first = false;
    }
    os << ")[" << StrJoin(n.input_vars, ",") << "] -> " << n.output_var;
  }
  os << " => " << answer_var;
  return os.str();
}

std::string LogicalPlan::Signature() const {
  std::ostringstream os;
  for (const auto& n : nodes) {
    os << n.op_name << "{";
    for (const auto& [k, v] : n.args) os << k << "=" << v << ";";
    os << "}";
  }
  return os.str();
}

}  // namespace unify::core
