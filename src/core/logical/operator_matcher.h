#ifndef UNIFY_CORE_LOGICAL_OPERATOR_MATCHER_H_
#define UNIFY_CORE_LOGICAL_OPERATOR_MATCHER_H_

#include <string>
#include <vector>

#include "core/operators/operator_def.h"
#include "embedding/hashed_embedder.h"

namespace unify::core {

/// Stage 1 of operator matching (paper Section V-A): embed the logical
/// representations of every operator offline, embed the query's logical
/// representation online, and return the operators with the smallest
/// embedding distance. Stage 2 (LLM reranking) happens in the plan
/// generator.
class OperatorMatcher {
 public:
  struct Match {
    std::string op_name;
    float distance;  ///< min distance over the operator's representations
  };

  /// `registry` must outlive the matcher. Embeddings of all operator
  /// logical representations are precomputed here (the paper's offline
  /// "Indexing" step, Section III-A).
  OperatorMatcher(const OperatorRegistry* registry, size_t dim = 48,
                  uint64_t seed = 31);

  /// The `k` operators closest to `query_lr`, ascending by distance.
  std::vector<Match> TopK(const std::string& query_lr, size_t k) const;

  size_t num_operators() const { return op_vecs_.size(); }

 private:
  struct OpEntry {
    std::string name;
    std::vector<embedding::Vec> vecs;
  };

  const OperatorRegistry* registry_;
  embedding::HashedEmbedder embedder_;
  std::vector<OpEntry> op_vecs_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_LOGICAL_OPERATOR_MATCHER_H_
