#ifndef UNIFY_CORE_LOGICAL_LOGICAL_PLAN_H_
#define UNIFY_CORE_LOGICAL_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "core/operators/physical.h"
#include "exec/dag.h"

namespace unify::core {

/// Sentinel input variable denoting the raw document collection.
inline constexpr char kDocsVar[] = "$docs";

/// One operator instance in a logical plan: which logical operator, the
/// arguments extracted from the matched logical representation, and the
/// variables it consumes/produces.
struct LogicalNode {
  std::string op_name;
  OpArgs args;
  std::vector<std::string> input_vars;  ///< kDocsVar = the corpus
  std::string output_var;
  std::string output_desc;
  /// The operator must be executed with a semantics-capable physical
  /// implementation (Section VI-C: requirements bypass the cost model).
  bool requires_semantics = false;
};

/// A DAG-structured logical plan (paper Section V-C). `dag` node ids index
/// `nodes`; edges run producer → consumer.
struct LogicalPlan {
  std::vector<LogicalNode> nodes;
  exec::Dag dag;
  /// The variable holding the final answer.
  std::string answer_var;
  /// The original query (kept for Generate fallbacks and diagnostics).
  std::string query_text;

  /// "Filter(condition=...) -> V1; GroupBy(by=sport) -> V2; ..."
  std::string DebugString() const;

  /// A content signature used to deduplicate candidate plans.
  std::string Signature() const;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_LOGICAL_LOGICAL_PLAN_H_
