#ifndef UNIFY_CORE_LOGICAL_PLAN_GENERATOR_H_
#define UNIFY_CORE_LOGICAL_PLAN_GENERATOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/trace.h"
#include "core/logical/logical_plan.h"
#include "core/logical/operator_matcher.h"
#include "core/operators/operator_def.h"
#include "llm/llm_client.h"

namespace unify::core {

/// Logical plan generation (paper Section V, Algorithm 1): depth-first
/// recursive query reduction with two-stage operator matching (embedding
/// top-k + LLM reranking), LLM-guided query rewriting, DAG plan
/// construction with LLM dependency checks, backtracking, multi-plan
/// exploration (n_c, τ), and the Generate fallback for queries that resist
/// full decomposition.
class PlanGenerator {
 public:
  struct Options {
    /// Candidate operators kept after embedding matching (paper: k = 5).
    int k = 5;
    /// Number of candidate plans to generate (paper: n_c = 3).
    int n_c = 3;
    /// Plan-diversity parameter τ ∈ (0, 1]: the fraction of branches
    /// explored at each search node before backtracking (τ = 1 is
    /// exhaustive). Paper default 0.75.
    double tau = 0.75;
    /// Reduction-depth guard.
    int max_steps = 24;
    /// How many alternative reductions ("variants") of the same operator
    /// to branch on — e.g. which of several filters to apply first.
    int max_variants = 3;
    /// Hard cap on LLM planning calls per query (runaway guard).
    int max_llm_calls = 600;
    /// Stage-2 LLM reranking of embedding candidates (Section V-A).
    /// Disabling it trusts raw embedding distances — the matching
    /// ablation.
    bool use_rerank = true;
  };

  struct Result {
    std::vector<LogicalPlan> plans;
    /// Sequential virtual time of all planning LLM calls.
    double planning_seconds = 0;
    int64_t llm_calls = 0;
    /// Planning calls that returned a non-OK status (after the resilience
    /// layer's retries, when configured). The DFS treats each as "this
    /// path yields nothing" — a deliberate, checked absorb: planning
    /// explores many redundant paths, so one failed probe costs a
    /// backtrack, not the query (docs/resilience.md, "Planning").
    int64_t llm_failures = 0;
    /// Reduction attempts whose subtree yielded no complete plan.
    int backtracks = 0;
    /// Candidate-set widenings after all top-k candidates failed (V-D).
    int widenings = 0;
    /// True when no full decomposition existed and a fallback plan
    /// (Generate-over-retrieval or LLM code generation, chosen by the LLM)
    /// was appended (paper Section V-D, Error Handling).
    bool used_fallback = false;
    /// Query states no operator could reduce. The paper: "encountered
    /// errors are also collected and can be used to build new operators
    /// tailored for the specific application scenario" — feed these to
    /// OperatorRegistry::Add.
    std::vector<std::string> unresolved_queries;
  };

  /// All pointers must outlive the generator.
  PlanGenerator(const OperatorRegistry* registry,
                const OperatorMatcher* matcher, llm::LlmClient* llm,
                Options options);

  /// Generates up to n_c candidate logical plans for `query`. When
  /// `trace` is non-null, a "plan.logical" span (child of `parent`) is
  /// recorded with one nested "plan.reduce" span per reduction step.
  /// Thread-safe: all search state lives on the caller's stack, so
  /// concurrent queries may share one generator (provided the LLM client
  /// is itself thread-safe).
  StatusOr<Result> Generate(const std::string& query, Trace* trace = nullptr,
                            SpanId parent = kNoSpan) const;

 private:
  struct SearchState {
    std::string query;
    LogicalPlan plan;
    std::map<std::string, std::string> vars;  ///< name -> description
    int var_counter = 0;
    /// Enclosing trace span (the search tree mirrors the span tree).
    SpanId span = kNoSpan;
  };

  /// Per-Generate() mutable state, kept on the caller's stack so one
  /// generator can serve concurrent queries.
  struct GenCtx {
    /// Signatures of plans already emitted (deduplicates search paths).
    std::set<std::string> seen_signatures;
    /// Active trace of this Generate() call; null when untraced.
    Trace* trace = nullptr;
  };

  /// Recursive DFS; appends complete plans to `result`.
  void Dfs(SearchState state, int depth, GenCtx& ctx, Result& result) const;

  /// Issues one LLM call, accumulating time into `result`.
  llm::LlmResult CallLlm(llm::LlmCall call, Result& result) const;

  /// Plan construction (Section V-C): appends `node` to `state.plan`,
  /// determining dependency edges via transitivity + LLM checks.
  void AddNodeWithDeps(SearchState& state, LogicalNode node,
                       Result& result) const;

  const OperatorRegistry* registry_;
  const OperatorMatcher* matcher_;
  llm::LlmClient* llm_;
  Options options_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_LOGICAL_PLAN_GENERATOR_H_
