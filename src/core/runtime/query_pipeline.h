#ifndef UNIFY_CORE_RUNTIME_QUERY_PIPELINE_H_
#define UNIFY_CORE_RUNTIME_QUERY_PIPELINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/logical/plan_generator.h"
#include "core/physical/optimizer.h"
#include "core/runtime/executor.h"
#include "core/runtime/query.h"
#include "exec/virtual_pool.h"
#include "llm/resilient_client.h"
#include "llm/shared_cache.h"

namespace unify::core {

class UnifySystem;

/// The staged query pipeline behind UnifySystem::Answer: admission ->
/// parse (logical plan generation) -> optimize (physical lowering + plan
/// selection + deadline pre-check) -> execute (the resumable engine with
/// the mid-query replan loop, docs/replanning.md) -> analyze (EXPLAIN
/// ANALYZE + accuracy ledger + cost-model feedback). The stages share one
/// QueryContext; each reads what earlier stages left there and the
/// pipeline finalizes the QueryResult exactly once, whatever stage
/// stopped the query.
///
/// One pipeline serves one query on one thread (execution may still fan
/// morsels across workers); it installs the query's thread-local scopes —
/// metrics sink, retry budget, cache routing — for its whole lifetime, so
/// planning-side LLM calls (including replan decisions) are attributed to
/// the query like execution-side ones.
class QueryPipeline {
 public:
  /// `system` must be Setup(); `shared_pool` non-null schedules execution
  /// on a serving session's shared virtual server pool; `trace` non-null
  /// nests the query under the caller's `parent` span.
  QueryPipeline(const UnifySystem& system, const QueryRequest& request,
                exec::VirtualLlmPool* shared_pool,
                std::shared_ptr<Trace> trace, SpanId parent);

  /// Runs every stage and returns the finalized result. Call once.
  QueryResult Run();

 private:
  /// What the stages share. Earlier stages populate it, later stages
  /// consume it; `result` accumulates the externally visible outcome.
  struct QueryContext {
    QueryResult result;
    ResolvedQueryOptions resolved;
    /// The per-query optimizer options (system options + request
    /// overrides), reused verbatim by mid-query re-optimization.
    OptimizerOptions oopts;
    std::shared_ptr<Trace> trace;
    /// This query's own metrics registry (installed as the thread-local
    /// sink; the executor re-installs it on its workers).
    MetricsRegistry query_metrics;
    /// The query's shared pool of virtual retry seconds.
    std::optional<llm::RetryBudget> retry_budget;
    /// Parse output: candidate logical plans + planning costs.
    std::optional<PlanGenerator::Result> generated;
    /// Optimize output: the chosen physical plan (pre-replan).
    std::optional<PhysicalPlan> physical;
  };

  /// Admission checks + per-query environment (resolved options, trace,
  /// metrics/budget/cache scopes, root span). False stops the pipeline.
  bool Admit();
  /// Logical plan generation (Section V).
  bool Parse();
  /// Physical lowering + plan selection (Section VI) and the deadline
  /// pre-check on the predicted makespan.
  bool Optimize();
  /// Plan execution (Section III-C): the single-shot path when mid-query
  /// re-optimization is off (byte-identical to previous releases), the
  /// resumable engine with the replan loop when on. Runs Analyze on the
  /// executed plan before returning.
  void ExecutePlan();
  /// One replan consideration at a materialization point: the
  /// planner-tier decision call, suffix re-lowering under measured
  /// cardinalities, and the adopt-or-keep verdict applied to `state`.
  void ConsiderReplan(const ReplanRequest& request, PlanExecutor& executor,
                      PlanExecutor::ExecutionState& state);
  /// EXPLAIN ANALYZE records + accuracy-ledger feeding + replan outcome
  /// audit + cost-model feedback, against the plan that actually ran.
  void Analyze(PlanExecutor& executor, const PhysicalPlan& executed_plan);
  /// Totals, phase, per-query metrics snapshot, trace attributes.
  void Finalize();

  const UnifySystem& system_;
  const QueryRequest& request_;
  exec::VirtualLlmPool* shared_pool_;
  SpanId parent_;
  QueryContext ctx_;
  std::unique_ptr<ScopedSpan> root_;
  /// Thread-affine RAII scopes, installed by Admit for the pipeline's
  /// lifetime (declaration order matters only for destruction symmetry).
  std::optional<MetricsRegistry::ScopedSink> metrics_scope_;
  std::optional<llm::RetryBudget::ScopedUse> budget_scope_;
  std::optional<llm::SharedCacheLlmClient::ScopedUse> cache_scope_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_QUERY_PIPELINE_H_
