#ifndef UNIFY_CORE_RUNTIME_QUERY_H_
#define UNIFY_CORE_RUNTIME_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/physical/optimizer.h"
#include "core/runtime/executor.h"
#include "corpus/answer.h"

namespace unify::core {

/// Where query processing stopped. Successful queries end in kComplete;
/// a failed query's phase names the stage whose status is reported in
/// QueryResult::status (the error taxonomy of the request/response API).
enum class QueryPhase {
  /// Rejected before any work: invalid request (kInvalidArgument),
  /// Setup() not called (kFailedPrecondition), or serving-layer admission
  /// control (kResourceExhausted when the queue is full).
  kAdmission,
  /// Logical plan generation failed (parse / reduction errors).
  kPlanning,
  /// Physical optimization / plan selection failed, or the per-query
  /// deadline was exceeded by the predicted makespan (kDeadlineExceeded).
  kOptimization,
  /// Plan execution failed, or the measured virtual completion overran
  /// the deadline (kDeadlineExceeded).
  kExecution,
  /// The query finished with a partial or fallback answer after graceful
  /// degradation absorbed a transient execution failure: status is OK,
  /// QueryResult::degraded_detail says what was lost (docs/resilience.md).
  kDegraded,
  /// All phases succeeded.
  kComplete,
};

/// "admission", "planning", "optimization", "execution", "degraded", or
/// "complete".
const char* QueryPhaseName(QueryPhase phase);

/// Serving-layer priority class of a request (docs/api.md, "Scheduling &
/// tenant isolation"). Under UnifyService's fair scheduler the classes are
/// strict tiers: a queued interactive request always dispatches before any
/// normal one, and normal before batch. Within a tier, tenants share the
/// workers via deficit-weighted round-robin. The FIFO scheduler ignores
/// the class entirely.
enum class QueryPriority {
  kBatch = 0,
  kNormal = 1,
  kInteractive = 2,
};

/// "batch", "normal", or "interactive".
const char* QueryPriorityName(QueryPriority priority);

struct UnifyOptions;

/// The per-query options after resolving QueryRequest::Overrides against
/// the system-wide UnifyOptions: every field is concrete — this is what
/// the runtime actually executes with. Produced by
/// QueryRequest::Overrides::ResolveAgainst().
struct ResolvedQueryOptions {
  OptimizeObjective objective;
  PhysicalMode physical_mode;
  bool collect_trace = false;
  /// Clamped to >= 1; 1 is the sequential single-stream model.
  int max_intra_op_parallelism = 1;
  bool graceful_degradation = false;
  /// Before the deadline clamp the runtime applies per query.
  double retry_budget_seconds = 0;
  /// Whether cacheable per-document LLM calls go through the shared
  /// answer cache (docs/caching.md).
  bool use_llm_cache = false;
  /// Mid-query re-optimization (docs/replanning.md): pause at
  /// materialization points whose observed cardinality diverges from the
  /// estimate by `reoptimize_qerror_threshold` or more and re-lower the
  /// un-executed suffix, at most `max_reoptimizations` times per query.
  bool reoptimize = false;
  double reoptimize_qerror_threshold = 3.0;
  int max_reoptimizations = 2;
};

/// One analytics query plus its per-query options. The explicit request
/// type is the stable public entry point: construct with just `text` for
/// defaults, or set `overrides` fields to shadow the system-wide
/// UnifyOptions for this query only.
struct QueryRequest {
  /// The natural-language analytics question.
  std::string text;

  /// Every per-query knob that shadows a system-wide UnifyOptions
  /// setting lives here, as an optional: unset means "use the system
  /// default". One struct, one resolution rule — ResolveAgainst() is the
  /// single place request-vs-system precedence is decided.
  struct Overrides {
    /// Shadows UnifyOptions::objective (time vs. dollars).
    std::optional<OptimizeObjective> objective;
    /// Shadows UnifyOptions::physical_mode.
    std::optional<PhysicalMode> physical_mode;
    /// Shadows UnifyOptions::collect_trace.
    std::optional<bool> collect_trace;
    /// Shadows the executor's morsel-driven intra-operator parallelism
    /// (UnifyOptions::exec.max_intra_op_parallelism) — also steers the
    /// optimizer's makespan prediction. Values < 1 clamp to 1; 1
    /// reproduces the sequential single-stream model exactly, and
    /// answers are byte-identical for every setting.
    std::optional<int> max_intra_op_parallelism;
    /// Shadows UnifyOptions::graceful_degradation: when a transient LLM
    /// failure survives retries AND the executor's fallback strategies,
    /// surface a partial/empty answer with QueryPhase::kDegraded instead
    /// of failing the query.
    std::optional<bool> graceful_degradation;
    /// Shadows UnifyOptions::default_retry_budget_seconds (virtual
    /// seconds of backoff + retry work the query may spend recovering
    /// from transient LLM faults; see docs/resilience.md). The runtime
    /// additionally clamps the resolved value to `deadline_seconds`;
    /// 0 disables retrying for this query.
    std::optional<double> retry_budget_seconds;
    /// Shadows UnifyOptions::cache.enabled: route this query's cacheable
    /// per-document LLM calls through (true) or around (false) the
    /// shared answer cache (docs/caching.md).
    std::optional<bool> use_llm_cache;
    /// Shadow the system-wide mid-query re-optimization knobs
    /// (UnifyOptions::exec.reoptimize / reoptimize_qerror_threshold /
    /// max_reoptimizations; docs/replanning.md). With reoptimize off the
    /// query reproduces the single-shot execution path byte-identically.
    std::optional<bool> reoptimize;
    std::optional<double> reoptimize_qerror_threshold;
    std::optional<int> max_reoptimizations;
    /// Serving-layer scheduling class (default kNormal). Unlike the other
    /// overrides this shadows no UnifyOptions field — it is consumed by
    /// UnifyService's fair scheduler before the query reaches the runtime,
    /// so ResolveAgainst() ignores it (docs/api.md, "Scheduling & tenant
    /// isolation").
    std::optional<QueryPriority> priority;

    /// The one resolution rule: each set field wins over its system-wide
    /// counterpart in `defaults`; parallelism is clamped to >= 1.
    /// Defined in unify.cc (needs the full UnifyOptions type).
    ResolvedQueryOptions ResolveAgainst(const UnifyOptions& defaults) const;
  };
  Overrides overrides;

  /// Upper bound on the query's *virtual* total time (planning + execution
  /// including cross-query queueing), in seconds; 0 = no deadline. A query
  /// whose predicted or measured completion overruns it fails with
  /// kDeadlineExceeded — after planning the predicted makespan aborts
  /// execution early, saving the execution-side LLM spend.
  double deadline_seconds = 0;

  /// Virtual time at which the query becomes ready to execute. Negative
  /// (the default) means "now": a standalone Answer() uses 0, a
  /// UnifyService uses the shared pool's monotonic clock. Closed-loop
  /// benchmark clients set it to their previous query's completion time.
  double arrival_seconds = -1;

  /// Free-form caller identity, echoed into QueryResult and the
  /// serve.query span (multi-tenant attribution).
  std::string client_tag;

  /// Stable per-query id deriving the query's RNG streams
  /// (seed ⊕ query_id). 0 (the default) derives it from a stable hash of
  /// `text`, so identical queries behave identically regardless of
  /// submission order — the property that makes concurrent serving
  /// byte-identical to a sequential run.
  uint64_t query_id = 0;
};

/// One physical node's EXPLAIN ANALYZE record: the optimizer's estimates
/// next to what execution measured, in the plan's topological render
/// order. Populated for every node of the chosen plan whenever execution
/// was reached; `executed` is false for nodes an upstream failure skipped.
struct PlanNodeAnalysis {
  std::string op_name;
  /// Chosen physical implementation (PhysicalImplName).
  std::string impl;
  std::string output_var;
  /// Indentation depth in the plan DAG render (longest path from a root).
  int depth = 0;
  /// False when the node never ran (upstream failure aborted the DAG).
  bool executed = false;

  /// Cardinalities: the optimizer's estimates vs the values execution
  /// measured, and their q-error (max of the two ratios, clamped ≥ 1).
  double est_in_card = 0;
  double est_out_card = 0;
  double actual_in_card = 0;
  double actual_out_card = 0;
  double card_qerror = 0;

  /// Virtual seconds: the cost model's sequential-work estimate vs the
  /// measured operator stream (cpu + llm), plus the node's interval on
  /// the server pool and its wait for a free server.
  double est_seconds = 0;
  double actual_seconds = 0;
  double virt_start = 0;
  double virt_finish = 0;
  double queue_wait_seconds = 0;

  /// API spend: predicted vs measured.
  double est_dollars = 0;
  double actual_dollars = 0;
  int64_t llm_calls = 0;

  /// Morsels: predicted vs actually run (1 = sequential stream).
  int est_partitions = 1;
  int partitions = 1;

  /// Plan adjustment on this node: its chosen impl failed and `retries`
  /// alternatives were attempted.
  bool adjusted = false;
  int retries = 0;

  /// Ordinal (1-based) of the mid-query replan that re-lowered this node
  /// (docs/replanning.md); 0 = the node ran as originally planned.
  int replanned_by = 0;
  /// True for the synthetic record of the Section V-D fallback
  /// generation, which answers the query but has no plan node.
  bool synthetic_fallback = false;
};

/// The outcome of one query: answer, status + phase taxonomy, virtual-time
/// accounting, and observability payloads.
struct QueryResult {
  Status status = Status::OK();
  /// Stage the query reached (kComplete on success).
  QueryPhase phase = QueryPhase::kComplete;
  corpus::Answer answer;

  /// The effective query id (request id, or the stable text hash).
  uint64_t query_id = 0;
  /// Echo of QueryRequest::client_tag.
  std::string client_tag;

  /// Planning time: logical plan generation + physical optimization
  /// (including SCE sampling), sequential LLM virtual time.
  double plan_seconds = 0;
  /// Execution time: plan makespan on the LLM server pool, measured from
  /// the moment the query's execution became ready. Under concurrent
  /// serving this includes waiting for servers occupied by other queries'
  /// streams (cross-query contention).
  double exec_seconds = 0;
  /// The optimizer's predicted makespan for the chosen plan (est_makespan,
  /// under the query's effective intra-operator parallelism) — compare
  /// with exec_seconds to judge cost-model accuracy.
  double predicted_exec_seconds = 0;
  /// The optimizer's predicted API spend for the chosen plan — compare
  /// with exec_dollars.
  double predicted_exec_dollars = 0;
  double total_seconds = 0;
  /// Virtual arrival (ready) time of the query and its absolute
  /// completion time on the serving clock: completion = arrival + total.
  double arrival_seconds = 0;
  double completion_seconds = 0;
  /// Wall-clock seconds the request spent queued in the serving layer
  /// before a worker picked it up (0 for standalone Answer() calls).
  double queue_wall_seconds = 0;

  /// API spend of plan execution (footnote-1 objective accounting).
  double exec_dollars = 0;
  /// Shared-LLM-cache attribution for THIS query (exact, via the
  /// per-query metrics sink): per-document items served from a cached
  /// entry, and items that coalesced onto another in-flight call's
  /// leader instead of re-paying the base call. Both are 0 when the
  /// cache is disabled for the query. See docs/caching.md.
  int64_t cache_item_hits = 0;
  int64_t cache_coalesced = 0;
  int num_candidate_plans = 0;
  bool used_fallback = false;
  bool adjusted = false;
  /// True iff phase == kDegraded; `degraded_detail` then names the
  /// transient failure graceful degradation absorbed.
  bool degraded = false;
  std::string degraded_detail;
  std::string plan_debug;
  /// EXPLAIN rendering of the chosen physical plan.
  std::string plan_explain;
  /// Per-operator execution timeline (virtual start/finish + LLM usage).
  std::string timeline;
  /// Query-lifecycle trace (null when tracing is disabled). Render with
  /// Trace::ToText() or export with Trace::ToChromeJson() for
  /// chrome://tracing / Perfetto.
  std::shared_ptr<Trace> trace;
  /// This query's own metrics: every instrumented site records into a
  /// per-query registry (installed thread-locally on each thread that
  /// works on the query) alongside the process-wide one, so counters and
  /// histograms here are exact even under concurrent serving — they never
  /// absorb overlapping queries' activity (see docs/api.md).
  MetricsSnapshot metrics;

  /// EXPLAIN ANALYZE records: one entry per node of the chosen physical
  /// plan, in render order (plus a trailing synthetic record when the
  /// Section V-D fallback produced the answer). Empty when execution was
  /// never reached (planning/optimization failure, deadline pre-check
  /// abort).
  std::vector<PlanNodeAnalysis> plan_analysis;

  /// Mid-query re-optimizations this query considered, in trigger order
  /// (docs/replanning.md). Empty unless exec.reoptimize was on and a
  /// materialization point tripped the q-error threshold.
  std::vector<ReplanRecord> replans;

  /// Text rendering of `plan_analysis` in the style of
  /// `PhysicalPlan::Explain()`: header with predicted vs measured
  /// makespan/dollars, then one line per node with estimated vs actual
  /// cardinalities (q-error), seconds, dollars, morsels, and retries.
  /// Empty string when `plan_analysis` is empty.
  std::string explain_analyze() const;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_QUERY_H_
