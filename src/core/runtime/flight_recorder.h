#ifndef UNIFY_CORE_RUNTIME_FLIGHT_RECORDER_H_
#define UNIFY_CORE_RUNTIME_FLIGHT_RECORDER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"

namespace unify::core {

/// What happened to a served query at one point of its lifecycle. The
/// lowercase names (ServeEventKindName) are the telemetry::kEvent*
/// constants documented in docs/observability.md, "Flight recorder".
enum class ServeEventKind {
  /// Accepted into the serving queue.
  kAdmit,
  /// Picked up by a worker (queue wait is known here).
  kStart,
  /// Finished serving — success or failure; `detail` carries the status.
  kComplete,
  /// Rejected by admission control (queue full); terminal.
  kReject,
  /// Completed past its deadline (also records a kComplete event).
  kDeadlineMiss,
  /// Execution replanned mid-flight: plan adjustment or fallback.
  kReplan,
  /// Completed degraded: graceful degradation absorbed a transient LLM
  /// failure (also records a kComplete event; `detail` names the fault).
  kDegraded,
  /// The SLO tracker's burn rates crossed the breach threshold
  /// (edge-triggered per episode; `detail` carries the rates — see
  /// core/runtime/slo_tracker.h and "SLOs" in docs/observability.md).
  kSloBreach,
  /// A queued request was shed by the fair scheduler: its deadline could
  /// no longer be met, so it failed without occupying a worker; terminal
  /// (fair mode only).
  kShed,
  /// Rejected by the tenant's queue-depth cap in the fair scheduler
  /// (before the global queue filled); terminal (fair mode only).
  kTenantReject,
};

const char* ServeEventKindName(ServeEventKind kind);

/// One structured postmortem event. Plain value type; string fields stay
/// small (tags and status messages, not payloads).
struct ServeEvent {
  ServeEventKind kind = ServeEventKind::kAdmit;
  /// Monotone sequence number over the recorder's lifetime (never reset
  /// by ring eviction — gaps reveal how much history was dropped).
  uint64_t seq = 0;
  /// Wall-clock seconds since the recorder was constructed.
  double wall_seconds = 0;
  uint64_t query_id = 0;
  std::string client_tag;
  /// QueryPhaseName of the phase the query had reached (completion-side
  /// events; empty for admit/start).
  std::string phase;
  /// Status message, rejection reason, or replan description.
  std::string detail;
  /// Timings, populated on completion-side events (virtual seconds except
  /// queue_wall_seconds).
  double queue_wall_seconds = 0;
  double plan_seconds = 0;
  double exec_seconds = 0;
  double total_seconds = 0;
};

/// A retained slow query: enough to do a postmortem without re-running —
/// including its full trace when the query collected one.
struct SlowQuery {
  uint64_t query_id = 0;
  std::string client_tag;
  std::string text;
  double total_seconds = 0;
  double plan_seconds = 0;
  double exec_seconds = 0;
  /// The query's lifecycle trace (null when tracing was off).
  std::shared_ptr<Trace> trace;
};

/// A bounded, thread-safe structured event ring for the serving layer's
/// postmortem story: UnifyService records admission, start, completion,
/// rejection, deadline-miss, and replan events here, plus a top-K
/// slowest-query list with their traces. Readers get consistent
/// snapshots; writers pay one mutex acquisition — noise next to the
/// planning/execution work they annotate.
class FlightRecorder {
 public:
  struct Options {
    /// Events retained; older ones are overwritten (ring buffer).
    size_t capacity = 256;
    /// Slowest queries retained (by total_seconds).
    size_t slow_queries = 8;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event (seq and wall_seconds are assigned here) and
  /// returns its sequence number.
  uint64_t Record(ServeEvent event);

  /// Offers a completed query to the slow list; kept only while it ranks
  /// among the slowest Options::slow_queries by total_seconds.
  void RecordSlow(SlowQuery query);

  /// The retained events, oldest first.
  std::vector<ServeEvent> events() const;

  /// The retained slow queries, slowest first.
  std::vector<SlowQuery> slow_queries() const;

  /// Events ever recorded (≥ events().size()).
  uint64_t total_recorded() const;

  /// The retained events as JSON Lines, oldest first: one object per
  /// line with kind/seq/wall_seconds/query_id/client_tag/phase/detail and
  /// the timing fields (timings omitted when zero).
  std::string ToJsonl() const;

  /// The retained slow queries as JSON Lines, slowest first (one object
  /// per query: query_id/client_tag/text/timings; traces are not
  /// serialized — export those via Trace::ToChromeJson()).
  std::string SlowQueriesToJsonl() const;

 private:
  Options options_;
  mutable std::mutex mu_;
  /// Ring storage: grows to capacity, then slot (seq % capacity) is
  /// overwritten.
  std::vector<ServeEvent> ring_;
  uint64_t next_seq_ = 0;
  std::vector<SlowQuery> slow_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_FLIGHT_RECORDER_H_
