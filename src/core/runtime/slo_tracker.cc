#include "core/runtime/slo_tracker.h"

#include <algorithm>

namespace unify::core {

SloTracker::SloTracker(Options options) : options_(options) {
  if (options_.target >= 1.0) options_.target = 1.0 - 1e-9;
  if (options_.target < 0) options_.target = 0;
  if (options_.fast_window_seconds <= 0) options_.fast_window_seconds = 300;
  if (options_.slow_window_seconds < options_.fast_window_seconds) {
    options_.slow_window_seconds = options_.fast_window_seconds;
  }
  if (options_.breach_burn_rate <= 0) options_.breach_burn_rate = 14.4;
}

bool SloTracker::IsGood(bool ok, double total_seconds) const {
  if (!ok) return false;
  return options_.latency_objective_seconds <= 0 ||
         total_seconds <= options_.latency_objective_seconds;
}

double SloTracker::BurnRate(int64_t good, int64_t bad) const {
  const int64_t total = good + bad;
  if (total == 0) return 0;
  const double bad_fraction = static_cast<double>(bad) / total;
  return bad_fraction / (1.0 - options_.target);
}

void SloTracker::PruneLocked(double now_seconds) const {
  const double cutoff = now_seconds - options_.slow_window_seconds;
  while (!events_.empty() && events_.front().time <= cutoff) {
    events_.pop_front();
  }
}

SloTracker::Outcome SloTracker::Record(double now_seconds, bool good) {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now_seconds);
  events_.push_back(Event{now_seconds, good});
  if (good) {
    good_ += 1;
  } else {
    bad_ += 1;
  }

  int64_t fast_good = 0, fast_bad = 0, slow_good = 0, slow_bad = 0;
  const double fast_cutoff = now_seconds - options_.fast_window_seconds;
  for (const Event& e : events_) {
    if (e.good) {
      slow_good += 1;
      if (e.time > fast_cutoff) fast_good += 1;
    } else {
      slow_bad += 1;
      if (e.time > fast_cutoff) fast_bad += 1;
    }
  }

  Outcome outcome;
  outcome.good = good;
  outcome.burn_rate_fast = BurnRate(fast_good, fast_bad);
  outcome.burn_rate_slow = BurnRate(slow_good, slow_bad);
  const bool breach = outcome.burn_rate_fast >= options_.breach_burn_rate &&
                      outcome.burn_rate_slow >= 1.0;
  outcome.breach_started = breach && !in_breach_;
  outcome.breach_ended = !breach && in_breach_;
  in_breach_ = breach;
  return outcome;
}

SloTracker::State SloTracker::state(double now_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked(now_seconds);
  State s;
  s.good = good_;
  s.bad = bad_;
  const double fast_cutoff = now_seconds - options_.fast_window_seconds;
  for (const Event& e : events_) {
    if (e.good) {
      s.slow_good += 1;
      if (e.time > fast_cutoff) s.fast_good += 1;
    } else {
      s.slow_bad += 1;
      if (e.time > fast_cutoff) s.fast_bad += 1;
    }
  }
  s.burn_rate_fast = BurnRate(s.fast_good, s.fast_bad);
  s.burn_rate_slow = BurnRate(s.slow_good, s.slow_bad);
  s.in_breach = in_breach_;
  return s;
}

}  // namespace unify::core
