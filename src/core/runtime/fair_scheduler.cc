#include "core/runtime/fair_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/metrics.h"
#include "common/telemetry_names.h"
#include "core/runtime/tenant_ledger.h"

namespace unify::core {

const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kBatch:
      return "batch";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kInteractive:
      return "interactive";
  }
  return "unknown";
}

namespace {

double WallSecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

FairScheduler::FairScheduler(Options options)
    : options_(std::move(options)) {}

std::string FairScheduler::TenantKey(const std::string& client_tag) {
  return client_tag.empty() ? std::string(TenantLedger::kUntagged)
                            : client_tag;
}

double FairScheduler::WeightOfLocked(const std::string& tenant) const {
  auto it = options_.tenant_weights.find(tenant);
  const double weight =
      it != options_.tenant_weights.end() ? it->second
                                          : options_.default_weight;
  return std::clamp(weight, kMinWeight, kMaxWeight);
}

double FairScheduler::WeightOf(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return WeightOfLocked(TenantKey(tenant));
}

Status FairScheduler::Enqueue(Task task) {
  task.tenant = TenantKey(task.tenant);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler is shutting down");
    }
    TenantInfo& info = tenants_[task.tenant];
    if (options_.per_tenant_queue_depth > 0 &&
        info.queued >= options_.per_tenant_queue_depth) {
      info.rejected += 1;
      tenant_rejects_ += 1;
      MetricAddCounter(telemetry::kMetricSchedTenantRejects);
      return Status::ResourceExhausted(
          "tenant '" + task.tenant + "' queue full (" +
          std::to_string(info.queued) + " queued, per_tenant_queue_depth " +
          std::to_string(options_.per_tenant_queue_depth) + ")");
    }
    task.seq = next_seq_++;
    task.enqueued_at = std::chrono::steady_clock::now();
    const int pri = static_cast<int>(task.priority);
    TenantQueue& tq = queues_[pri][task.tenant];
    tq.tasks.push_back(std::move(task));
    if (!tq.in_wheel) {
      wheels_[pri].push_back(tq.tasks.back().tenant);
      tq.in_wheel = true;
      tq.fresh = true;
    }
    info.queued += 1;
    queued_ += 1;
    queued_by_class_[pri] += 1;
    enqueued_ += 1;
    MetricSetGauge(telemetry::kMetricSchedQueued,
                   static_cast<double>(queued_));
  }
  work_cv_.notify_one();
  return Status::OK();
}

bool FairScheduler::ExpiredLocked(const Task& task, double now) const {
  return now >= 0 && task.deadline_seconds > 0 && task.arrival_seconds >= 0 &&
         now - task.arrival_seconds >= task.deadline_seconds;
}

bool FairScheduler::HigherTierDispatchableLocked(int pri) const {
  for (int higher = pri + 1; higher < kNumPriorities; ++higher) {
    for (const auto& [tenant, tq] : queues_[higher]) {
      if (tq.tasks.empty()) continue;
      auto it = tenants_.find(tenant);
      const int64_t running = it != tenants_.end() ? it->second.running : 0;
      if (options_.per_tenant_max_concurrency <= 0 ||
          running < options_.per_tenant_max_concurrency) {
        return true;
      }
    }
  }
  return false;
}

bool FairScheduler::ScanTierLocked(int pri, Task* out,
                                   std::vector<Task>* to_shed,
                                   bool* refilled) {
  std::deque<std::string>& wheel = wheels_[pri];
  const double now = options_.now ? options_.now() : -1;
  // Each original wheel member is visited exactly once: every visit pops
  // the front and either retires the tenant or rotates it to the back.
  size_t visits = wheel.size();
  while (visits-- > 0 && !wheel.empty()) {
    const std::string tenant = wheel.front();
    TenantQueue& tq = queues_[pri][tenant];
    TenantInfo& info = tenants_[tenant];
    // Expired heads are shed instead of occupying a worker; per-tenant
    // FIFO means anything behind an unexpired head is checked once it
    // surfaces.
    while (!tq.tasks.empty() && ExpiredLocked(tq.tasks.front(), now)) {
      to_shed->push_back(std::move(tq.tasks.front()));
      tq.tasks.pop_front();
      info.queued -= 1;
      info.sheds += 1;
      queued_ -= 1;
      queued_by_class_[pri] -= 1;
      sheds_ += 1;
      MetricAddCounter(telemetry::kMetricSchedSheds);
    }
    if (tq.tasks.empty()) {
      wheel.pop_front();
      tq.in_wheel = false;
      tq.fresh = true;
      tq.deficit = 0;
      continue;
    }
    if (options_.per_tenant_max_concurrency > 0 &&
        info.running >= options_.per_tenant_max_concurrency) {
      // At the concurrency cap: rotate past without granting deficit, so
      // a blocked tenant does not bank credit it could burst later.
      wheel.pop_front();
      wheel.push_back(tenant);
      tq.fresh = true;
      continue;
    }
    if (tq.fresh) {
      const double weight = WeightOfLocked(tenant);
      tq.deficit = std::min(tq.deficit + weight, weight + 1.0);
      tq.fresh = false;
      *refilled = true;
    }
    if (tq.deficit < 1.0) {
      // Fractional weight still accumulating; costs this visit.
      wheel.pop_front();
      wheel.push_back(tenant);
      tq.fresh = true;
      continue;
    }
    // Dispatch the tenant's head.
    tq.deficit -= 1.0;
    *out = std::move(tq.tasks.front());
    tq.tasks.pop_front();
    info.queued -= 1;
    info.running += 1;
    info.dispatched += 1;
    queued_ -= 1;
    queued_by_class_[pri] -= 1;
    running_ += 1;
    dispatched_ += 1;
    MetricAddCounter(telemetry::kMetricSchedDispatches);
    MetricSetGauge(telemetry::kMetricSchedQueued,
                   static_cast<double>(queued_));
    MetricObserve(std::string(telemetry::kMetricSchedQueueSeconds) + "." +
                      QueryPriorityName(out->priority),
                  WallSecondsSince(out->enqueued_at));
    if (tq.tasks.empty()) {
      wheel.pop_front();
      tq.in_wheel = false;
      tq.fresh = true;
      tq.deficit = 0;
    } else if (tq.deficit < 1.0) {
      wheel.pop_front();
      wheel.push_back(tenant);
      tq.fresh = true;
    }
    if (options_.dispatch_probe) {
      options_.dispatch_probe(*out, HigherTierDispatchableLocked(pri));
    }
    return true;
  }
  return false;
}

bool FairScheduler::ScanLocked(Task* out, std::vector<Task>* to_shed) {
  for (int pri = kNumPriorities - 1; pri >= 0; --pri) {
    // Refill passes strictly grow some unblocked tenant's deficit, so this
    // loop dispatches within ceil(1 / kMinWeight) passes or proves the
    // tier has no dispatchable tenant and falls through to the next one.
    while (true) {
      bool refilled = false;
      if (ScanTierLocked(pri, out, to_shed, &refilled)) return true;
      if (!refilled) break;
      wheel_rotations_ += 1;
      MetricAddCounter(telemetry::kMetricSchedWheelRotations);
    }
  }
  return false;
}

bool FairScheduler::Dequeue(Task* out) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    std::vector<Task> to_shed;
    const bool got = ScanLocked(out, &to_shed);
    if (got || !to_shed.empty()) {
      // Shed callbacks (and the caller's run) execute with mu_ released:
      // they take service-level locks, which must never nest inside the
      // scheduler's.
      lock.unlock();
      for (Task& task : to_shed) {
        if (task.shed) task.shed(WallSecondsSince(task.enqueued_at));
      }
      if (got) return true;
      lock.lock();
      continue;  // shedding changed queue state; rescan before sleeping
    }
    if (shutdown_ && queued_ == 0) return false;
    work_cv_.wait(lock);
  }
}

void FairScheduler::OnComplete(const std::string& tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantInfo& info = tenants_[TenantKey(tenant)];
    info.running -= 1;
    running_ -= 1;
  }
  // A freed concurrency slot (or shutdown drain) may unblock any waiter.
  work_cv_.notify_all();
}

void FairScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
}

FairScheduler::Stats FairScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.enqueued = enqueued_;
  s.dispatched = dispatched_;
  s.tenant_rejects = tenant_rejects_;
  s.sheds = sheds_;
  s.wheel_rotations = wheel_rotations_;
  s.queued = queued_;
  s.running = running_;
  for (int pri = 0; pri < kNumPriorities; ++pri) {
    s.queued_by_class[pri] = queued_by_class_[pri];
  }
  for (const auto& [tenant, info] : tenants_) {
    TenantSched t;
    t.weight = WeightOfLocked(tenant);
    t.queued = info.queued;
    t.running = info.running;
    t.dispatched = info.dispatched;
    t.sheds = info.sheds;
    t.rejected = info.rejected;
    s.tenants[tenant] = t;
  }
  return s;
}

}  // namespace unify::core
