#ifndef UNIFY_CORE_RUNTIME_EXECUTOR_H_
#define UNIFY_CORE_RUNTIME_EXECUTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/physical/physical_plan.h"
#include "corpus/answer.h"
#include "exec/virtual_pool.h"
#include "llm/resilient_client.h"
#include "llm/shared_cache.h"

namespace unify::core {

/// The outcome of executing one physical plan.
struct ExecutionResult {
  Status status = Status::OK();
  corpus::Answer answer;
  /// Virtual end-to-end execution time: operator streams scheduled on the
  /// LLM server pool respecting plan dependencies (Section III-C).
  double virtual_seconds = 0;
  /// Total LLM stream time across all operators (resource usage).
  double llm_seconds_total = 0;
  /// Total API spend across all operators.
  double llm_dollars_total = 0;
  int64_t llm_calls = 0;
  /// True when plan adjustment fired (an operator failed and was retried
  /// with a different implementation).
  bool adjusted = false;
  /// True when graceful degradation absorbed a terminal transient failure:
  /// `status` is OK, the answer is partial/empty, and `degraded_detail`
  /// names the failure (Options::graceful_degradation must be set).
  bool degraded = false;
  std::string degraded_detail;
  /// Human-readable execution timeline: one line per operator with its
  /// virtual start/finish on the server pool and measured LLM usage,
  /// followed by one marker line per mid-query replan (when any fired).
  std::string timeline;
};

/// What execution actually measured for one DAG node — the "actual" side
/// of EXPLAIN ANALYZE (the "estimated" side lives on PhysicalNode).
/// Indexed like PhysicalPlan::nodes / PlanExecutor::node_stats().
struct NodeExecution {
  /// False when the node never ran (an upstream failure aborted the DAG).
  bool executed = false;
  /// Measured input cardinality (max over input values, the same
  /// convention the optimizer uses for est_in_card).
  double actual_in_card = 0;
  /// Measured output cardinality of the value the node produced.
  double actual_out_card = 0;
  /// Morsels the node actually ran as (1 = sequential single stream).
  int partitions = 1;
  /// True when plan adjustment fired on this node (its first impl failed).
  bool adjusted = false;
  /// Alternative implementations tried during adjustment.
  int retries = 0;
  /// Virtual interval on the server pool, relative to the query's ready
  /// time, and the wait for a free server inside it.
  double virt_start = 0;
  double virt_finish = 0;
  double queue_wait_seconds = 0;
};

/// A materialization point at which the adaptive engine paused: node
/// `node` just finished with a cardinality q-error at or above the
/// configured threshold, and un-executed nodes remain that a replan could
/// still improve. The pipeline answers with ApplyReplan (adopting a
/// re-lowered suffix or not) and calls Run again to resume.
struct ReplanRequest {
  int node = -1;
  std::string output_var;
  double observed_card = 0;
  double estimated_card = 0;
  /// QError(estimated_card, observed_card) — the trigger value.
  double qerror = 0;
  /// Absolute virtual time on the execution pool at which the trigger
  /// node finished (private pools start at 0, shared pools at the query's
  /// execution-ready time). Re-optimization costs its suffix from here.
  double elapsed_seconds = 0;
  /// Which plan nodes have finished executing (indexed like plan.nodes).
  std::vector<bool> executed;
  /// Every cardinality execution has materialized so far, keyed by the
  /// producing node's output variable — the facts handed to
  /// PhysicalOptimizer::Reoptimize as CardinalityOverrides.
  std::map<std::string, double> observed_cards;
};

/// One mid-query re-optimization, adopted or not (docs/replanning.md).
/// Produced by the query pipeline's replan loop, retained on QueryResult
/// for EXPLAIN ANALYZE, the flight recorder, and the \replan shell view.
struct ReplanRecord {
  /// The materialization point that fired the trigger.
  int trigger_node = -1;
  std::string trigger_var;
  double observed_card = 0;
  double estimated_card = 0;
  double qerror = 0;
  /// Absolute virtual time at which the trigger node finished.
  double elapsed_seconds = 0;
  /// The planner-tier replan decision call, charged to the query.
  double decision_seconds = 0;
  double decision_dollars = 0;
  /// Whether the re-lowered suffix was adopted (strictly better predicted
  /// cost-to-go under the query's objective) and what changed.
  bool adopted = false;
  int nodes_rechosen = 0;
  /// Geometric-mean observed/estimated cardinality bias the re-optimizer
  /// measured over executed nodes.
  double est_bias = 1.0;
  /// Predicted cost-to-go of the un-executed suffix under the measured
  /// cardinalities, in the query's objective (virtual seconds under
  /// kTime, dollars under kDollars): keeping the old impls vs the
  /// re-lowered ones.
  double old_suffix_cost = 0;
  double new_suffix_cost = 0;
  /// Plan nodes whose impl or args the adopted replan changed.
  std::vector<int> relowered_nodes;
  /// Every plan node still un-executed when the trigger fired (the
  /// suffix the predicted costs above cover) — the basis of the
  /// completion-time improved/not-improved audit.
  std::vector<int> suffix_nodes;
  /// Human-readable one-line summary (flight recorder detail).
  std::string detail;
};

/// The execution module (paper Section III-C): runs a physical plan with
/// parallel topological execution, dynamic plan adjustment on operator
/// failure, and virtual-time accounting on the simulated LLM server pool.
///
/// Two driving modes share the same per-node machinery:
///  - Execute() runs the whole DAG to completion (wall-clock parallel
///    workers, one batch virtual-time schedule at the end) — the
///    historical single-shot path, byte-identical to previous releases.
///  - Begin()/Run()/ApplyReplan()/Finish() expose the same execution as a
///    resumable engine that materializes one node at a time in virtual
///    dispatch order and pauses at materialization points whose observed
///    cardinality diverges from the optimizer's estimate, so the query
///    pipeline can re-optimize the un-executed suffix mid-flight
///    (docs/replanning.md). With no trigger the adaptive engine
///    reproduces the batch schedule exactly.
class PlanExecutor {
 public:
  struct Options {
    /// LLM servers (paper: 4 local Llamas).
    int num_servers = 4;
    /// Disable DAG parallelism (the Unify–noLO ablation, Section VII-D).
    bool parallel = true;
    /// Worker threads for real (wall-clock) parallel execution; 0 runs
    /// in-process sequentially (virtual time is unaffected).
    int threads = 0;
    /// Retries per failing operator during plan adjustment.
    int max_adjustments = 2;
    /// Morsel-driven intra-operator parallelism: a partitionable
    /// per-document LLM operator splits into up to this many independent
    /// whole-batch partitions that occupy distinct virtual servers
    /// concurrently (and run on `threads` wall-clock workers when set).
    /// Answers are byte-identical for every setting; 1 reproduces the
    /// sequential single-stream model exactly.
    int max_intra_op_parallelism = 1;
    /// Mid-query re-optimization (docs/replanning.md): execute through
    /// the resumable engine and pause at materialization points whose
    /// cardinality q-error reaches the threshold, letting the pipeline
    /// re-lower the un-executed suffix with measured cardinalities. Off
    /// reproduces the single-shot path byte-identically.
    bool reoptimize = false;
    /// Observed-vs-estimated cardinality q-error at or above which a
    /// materialization point yields a ReplanRequest.
    double reoptimize_qerror_threshold = 3.0;
    /// Replan pauses per query (each costs one planner-tier decision
    /// call).
    int max_reoptimizations = 2;
    /// Shared virtual LLM server pool (a UnifyService serving session):
    /// this plan's operator streams compete with every other in-flight
    /// query's streams, so the reported virtual times include cross-query
    /// queueing. Null = a fresh private pool of `num_servers` (the
    /// standalone one-query-at-a-time model). Must outlive the executor.
    exec::VirtualLlmPool* shared_pool = nullptr;
    /// Absolute virtual time at which the plan becomes ready on
    /// `shared_pool` (the query's arrival + planning time). Ignored for a
    /// private pool, which always starts at 0.
    double start_seconds = 0;
    /// Per-query metrics sink: installed (MetricsRegistry::ScopedSink) on
    /// every worker thread that runs a node or a morsel, so this query's
    /// execution-side metrics land in its own registry even when other
    /// queries share the process. Null = global registry only.
    MetricsRegistry* metrics_sink = nullptr;
    /// The query's shared retry budget, installed
    /// (llm::RetryBudget::ScopedUse) on every worker thread alongside the
    /// metrics sink so concurrent nodes/morsels drain one pool of virtual
    /// retry seconds. Null = unlimited retrying (policy caps still apply).
    llm::RetryBudget* retry_budget = nullptr;
    /// When the DAG fails with a *transient* LLM failure
    /// (llm::IsTransientLlmFailure) that even the Section V-D fallback
    /// replan could not cure, finish with ExecutionResult::degraded and an
    /// empty answer instead of a failed status (docs/resilience.md).
    bool graceful_degradation = false;
    /// The query's resolved shared-LLM-cache routing, installed
    /// (llm::SharedCacheLlmClient::ScopedUse) on every worker thread
    /// alongside the metrics sink, so coalescing fires across the
    /// morsels of one operator as well as across queries. Unset = leave
    /// each worker thread's default (the system-wide cache.enabled).
    std::optional<bool> use_llm_cache;
  };

  /// Everything one plan execution carries across the staged engine's
  /// pauses: the (possibly replanned) plan, the DAG frontier, bound
  /// variable values, the incremental virtual-time schedule, and the
  /// replans applied so far. Created by Begin(), advanced by Run(),
  /// finalized by Finish(). Not movable (owns a mutex); construct in
  /// place and pass by reference.
  struct ExecutionState {
    ExecutionState() = default;
    ExecutionState(const ExecutionState&) = delete;
    ExecutionState& operator=(const ExecutionState&) = delete;

    /// The plan being executed. ApplyReplan swaps in the re-lowered plan;
    /// executed nodes are pinned verbatim by the Reoptimize contract.
    PhysicalPlan plan;
    Trace* trace = nullptr;
    std::unique_ptr<ScopedSpan> exec_span;
    /// Guards vars / adjusted across DAG workers.
    std::mutex mu;
    std::map<std::string, Value> vars;
    bool adjusted = false;
    Status run_status = Status::OK();
    /// Span of each DAG node, for post-hoc virtual-interval annotation.
    std::vector<SpanId> node_spans;
    /// Per-partition LLM stream seconds of nodes that actually split.
    std::vector<std::vector<double>> node_partitions;
    /// Which nodes have finished executing.
    std::vector<bool> done;
    /// Nodes already checked against the replan trigger (so a resumed
    /// Run() never re-fires on the same materialization point).
    std::vector<bool> replan_checked;

    /// Virtual-time accounting. `incremental` = the adaptive engine
    /// schedules each node's stream the moment it materializes (so
    /// elapsed time is known at pause points); otherwise Execute() runs
    /// one batch schedule after the DAG completes.
    bool incremental = false;
    bool sched_ok = false;
    bool shared = false;
    double base = 0;
    std::unique_ptr<exec::VirtualLlmPool> local_pool;
    exec::VirtualLlmPool* pool = nullptr;
    /// Absolute start/finish of each node on the pool.
    std::vector<double> sched_start;
    std::vector<double> sched_finish;
    /// Absolute completion time of everything scheduled so far.
    double makespan = 0;
    /// Adaptive dispatch frontier: nodes whose dependencies finished,
    /// with their ready times (absolute), and remaining parent counts.
    /// In sequential mode the frontier is the whole topological order and
    /// `frontier_pos` walks it; in parallel mode Run() pops the
    /// earliest-ready entry (ties to the lower node index), mirroring the
    /// batch list scheduler exactly.
    bool engine_started = false;
    std::vector<std::pair<double, int>> frontier;
    size_t frontier_pos = 0;
    std::vector<int> pending_parents;
    /// Sequential-mode (parallel=false) virtual clock.
    double seq_clock = 0;
    /// Barrier: no node may start before this absolute time (a replan
    /// pause floors the un-executed suffix to trigger finish + decision
    /// time).
    double resume_floor = 0;

    /// Replans applied so far and their charged decision costs.
    std::vector<ReplanRecord> replans;
    int replan_yields = 0;
    double replan_seconds = 0;
    double replan_dollars = 0;
    int64_t replan_calls = 0;
  };

  PlanExecutor(ExecContext ctx, Options options)
      : ctx_(ctx), options_(options) {}

  /// Executes `plan` and converts the answer variable to an Answer. When
  /// `trace` is non-null an "execute" span (child of `parent`) is recorded
  /// with one "exec.node" span per DAG node, annotated post-hoc with the
  /// node's virtual-time interval on the simulated server pool.
  ExecutionResult Execute(const PhysicalPlan& plan, Trace* trace = nullptr,
                          SpanId parent = kNoSpan);

  /// --- The resumable engine (mid-query re-optimization) ---

  /// Initializes `state` for executing `plan` through the adaptive
  /// engine.
  void Begin(const PhysicalPlan& plan, ExecutionState& state,
             Trace* trace = nullptr, SpanId parent = kNoSpan);

  /// Executes nodes one at a time in virtual dispatch order (the order
  /// the batch list scheduler would dispatch them) until either a
  /// materialization point trips the replan trigger — returning the
  /// ReplanRequest to answer with ApplyReplan before calling Run again —
  /// or the DAG completes or fails (returns nullopt; call Finish).
  std::optional<ReplanRequest> Run(ExecutionState& state);

  /// Records the outcome of one replan consideration. `new_plan` non-null
  /// adopts the re-lowered plan for the un-executed suffix (executed
  /// nodes must be pinned verbatim, the Reoptimize contract); null keeps
  /// the current plan. Either way the decision call's cost is charged to
  /// the query and the suffix is floored to the pause's end (the barrier
  /// models execution waiting for the planner's verdict).
  void ApplyReplan(ExecutionState& state, ReplanRecord record,
                   const PhysicalPlan* new_plan);

  /// Assembles the ExecutionResult: totals (including replan decision
  /// charges), the timeline with replan markers, the Section V-D fallback
  /// and graceful degradation, and the answer.
  ExecutionResult Finish(ExecutionState& state);

  /// After execution, per-node measured stats (for cost-model feedback).
  const std::vector<OpStats>& node_stats() const { return node_stats_; }

  /// After execution, what each node actually did (EXPLAIN ANALYZE).
  const std::vector<NodeExecution>& node_executions() const {
    return node_executions_;
  }

  /// When the Section V-D fallback produced the answer, a synthetic
  /// execution record + stats for the fallback generation (it has no plan
  /// node), so EXPLAIN ANALYZE can show what actually answered the query.
  const std::optional<NodeExecution>& fallback_execution() const {
    return fallback_execution_;
  }
  const OpStats& fallback_stats() const { return fallback_stats_; }

 private:
  /// Executes one DAG node: morsel-driven partitioning when possible,
  /// plan adjustment on failure, stats + execution-record bookkeeping.
  Status RunNode(ExecutionState& state, int u);

  /// Schedules node `u`'s measured stream on the pool at `ready`
  /// (absolute), recording its interval. Returns the finish time.
  double ScheduleNode(ExecutionState& state, int u, double ready);

  /// Pushes the children of completed node `u` whose dependencies are all
  /// met onto the adaptive frontier.
  void AdvanceFrontier(ExecutionState& state, int u);

  ExecContext ctx_;
  Options options_;
  std::vector<OpStats> node_stats_;
  std::vector<NodeExecution> node_executions_;
  std::optional<NodeExecution> fallback_execution_;
  OpStats fallback_stats_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_EXECUTOR_H_
