#ifndef UNIFY_CORE_RUNTIME_EXECUTOR_H_
#define UNIFY_CORE_RUNTIME_EXECUTOR_H_

#include <map>
#include <optional>
#include <string>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/physical/physical_plan.h"
#include "corpus/answer.h"
#include "exec/virtual_pool.h"
#include "llm/resilient_client.h"
#include "llm/shared_cache.h"

namespace unify::core {

/// The outcome of executing one physical plan.
struct ExecutionResult {
  Status status = Status::OK();
  corpus::Answer answer;
  /// Virtual end-to-end execution time: operator streams scheduled on the
  /// LLM server pool respecting plan dependencies (Section III-C).
  double virtual_seconds = 0;
  /// Total LLM stream time across all operators (resource usage).
  double llm_seconds_total = 0;
  /// Total API spend across all operators.
  double llm_dollars_total = 0;
  int64_t llm_calls = 0;
  /// True when plan adjustment fired (an operator failed and was retried
  /// with a different implementation).
  bool adjusted = false;
  /// True when graceful degradation absorbed a terminal transient failure:
  /// `status` is OK, the answer is partial/empty, and `degraded_detail`
  /// names the failure (Options::graceful_degradation must be set).
  bool degraded = false;
  std::string degraded_detail;
  /// Human-readable execution timeline: one line per operator with its
  /// virtual start/finish on the server pool and measured LLM usage.
  std::string timeline;
};

/// What execution actually measured for one DAG node — the "actual" side
/// of EXPLAIN ANALYZE (the "estimated" side lives on PhysicalNode).
/// Indexed like PhysicalPlan::nodes / PlanExecutor::node_stats().
struct NodeExecution {
  /// False when the node never ran (an upstream failure aborted the DAG).
  bool executed = false;
  /// Measured input cardinality (max over input values, the same
  /// convention the optimizer uses for est_in_card).
  double actual_in_card = 0;
  /// Measured output cardinality of the value the node produced.
  double actual_out_card = 0;
  /// Morsels the node actually ran as (1 = sequential single stream).
  int partitions = 1;
  /// True when plan adjustment fired on this node (its first impl failed).
  bool adjusted = false;
  /// Alternative implementations tried during adjustment.
  int retries = 0;
  /// Virtual interval on the server pool, relative to the query's ready
  /// time, and the wait for a free server inside it.
  double virt_start = 0;
  double virt_finish = 0;
  double queue_wait_seconds = 0;
};

/// The execution module (paper Section III-C): runs a physical plan with
/// parallel topological execution, dynamic plan adjustment on operator
/// failure, and virtual-time accounting on the simulated LLM server pool.
class PlanExecutor {
 public:
  struct Options {
    /// LLM servers (paper: 4 local Llamas).
    int num_servers = 4;
    /// Disable DAG parallelism (the Unify–noLO ablation, Section VII-D).
    bool parallel = true;
    /// Worker threads for real (wall-clock) parallel execution; 0 runs
    /// in-process sequentially (virtual time is unaffected).
    int threads = 0;
    /// Retries per failing operator during plan adjustment.
    int max_adjustments = 2;
    /// Morsel-driven intra-operator parallelism: a partitionable
    /// per-document LLM operator splits into up to this many independent
    /// whole-batch partitions that occupy distinct virtual servers
    /// concurrently (and run on `threads` wall-clock workers when set).
    /// Answers are byte-identical for every setting; 1 reproduces the
    /// sequential single-stream model exactly.
    int max_intra_op_parallelism = 1;
    /// Shared virtual LLM server pool (a UnifyService serving session):
    /// this plan's operator streams compete with every other in-flight
    /// query's streams, so the reported virtual times include cross-query
    /// queueing. Null = a fresh private pool of `num_servers` (the
    /// standalone one-query-at-a-time model). Must outlive the executor.
    exec::VirtualLlmPool* shared_pool = nullptr;
    /// Absolute virtual time at which the plan becomes ready on
    /// `shared_pool` (the query's arrival + planning time). Ignored for a
    /// private pool, which always starts at 0.
    double start_seconds = 0;
    /// Per-query metrics sink: installed (MetricsRegistry::ScopedSink) on
    /// every worker thread that runs a node or a morsel, so this query's
    /// execution-side metrics land in its own registry even when other
    /// queries share the process. Null = global registry only.
    MetricsRegistry* metrics_sink = nullptr;
    /// The query's shared retry budget, installed
    /// (llm::RetryBudget::ScopedUse) on every worker thread alongside the
    /// metrics sink so concurrent nodes/morsels drain one pool of virtual
    /// retry seconds. Null = unlimited retrying (policy caps still apply).
    llm::RetryBudget* retry_budget = nullptr;
    /// When the DAG fails with a *transient* LLM failure
    /// (llm::IsTransientLlmFailure) that even the Section V-D fallback
    /// replan could not cure, finish with ExecutionResult::degraded and an
    /// empty answer instead of a failed status (docs/resilience.md).
    bool graceful_degradation = false;
    /// The query's resolved shared-LLM-cache routing, installed
    /// (llm::SharedCacheLlmClient::ScopedUse) on every worker thread
    /// alongside the metrics sink, so coalescing fires across the
    /// morsels of one operator as well as across queries. Unset = leave
    /// each worker thread's default (the system-wide cache.enabled).
    std::optional<bool> use_llm_cache;
  };

  PlanExecutor(ExecContext ctx, Options options)
      : ctx_(ctx), options_(options) {}

  /// Executes `plan` and converts the answer variable to an Answer. When
  /// `trace` is non-null an "execute" span (child of `parent`) is recorded
  /// with one "exec.node" span per DAG node, annotated post-hoc with the
  /// node's virtual-time interval on the simulated server pool.
  ExecutionResult Execute(const PhysicalPlan& plan, Trace* trace = nullptr,
                          SpanId parent = kNoSpan);

  /// After execution, per-node measured stats (for cost-model feedback).
  const std::vector<OpStats>& node_stats() const { return node_stats_; }

  /// After execution, what each node actually did (EXPLAIN ANALYZE).
  const std::vector<NodeExecution>& node_executions() const {
    return node_executions_;
  }

 private:
  ExecContext ctx_;
  Options options_;
  std::vector<OpStats> node_stats_;
  std::vector<NodeExecution> node_executions_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_EXECUTOR_H_
