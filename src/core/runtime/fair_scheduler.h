#ifndef UNIFY_CORE_RUNTIME_FAIR_SCHEDULER_H_
#define UNIFY_CORE_RUNTIME_FAIR_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/runtime/query.h"

namespace unify::core {

/// Multi-tenant fair dispatch queue between UnifyService::Submit() and the
/// worker pool (docs/api.md, "Scheduling & tenant isolation").
///
/// Structure: one FIFO queue per (priority class, tenant), where the
/// tenant key is QueryRequest::client_tag ("" buckets as "(untagged)").
/// The three QueryPriority classes are strict tiers — a queued interactive
/// task always dispatches before any normal one, and normal before batch,
/// unless the higher tier has no dispatchable tenant (every tenant with
/// queued work is at its concurrency cap). Within a tier, tenants share
/// the workers via deficit-weighted round-robin: each visit of the wheel
/// grants a tenant `weight` units of deficit, each dispatch costs one
/// unit, so over a backlogged stretch tenants dispatch in proportion to
/// their weights (fractional weights accumulate across rotations).
///
/// Per-tenant isolation: `per_tenant_queue_depth` bounds how much queue a
/// single tenant may occupy (Enqueue() returns kResourceExhausted for the
/// overflow — the tenant is rejected before the service's global
/// max_queue_depth trips for everyone), and `per_tenant_max_concurrency`
/// bounds how many of a tenant's requests run at once (excess stays queued
/// and the wheel skips the tenant without burning its deficit).
///
/// Queue-age shedding: a queued task carrying an explicit virtual arrival
/// time and a deadline is failed via its `shed` callback — instead of
/// wasting a worker on it — once the scheduler clock says the deadline can
/// no longer be met (now >= arrival + deadline). Tasks without an explicit
/// arrival start their deadline window at dispatch and are never shed.
///
/// Determinism: given a fixed arrival order, dispatch order is a pure
/// function of the queue/wheel state — per-tenant queues are FIFO (tasks
/// carry a monotone enqueue seq as the tie-break), the wheel visits
/// tenants in activation order, and nothing consults wall time except the
/// queue-age histograms. With one worker the dispatch sequence and every
/// scheduler counter replay byte-identically.
///
/// Locking: `mu_` is a leaf lock — the scheduler never calls back into
/// user code while holding it. `shed` callbacks fire on the dequeuing
/// worker thread after `mu_` is released, so they may take service-level
/// locks freely (see the lock-order note in service.cc).
class FairScheduler {
 public:
  static constexpr int kNumPriorities = 3;
  /// Weights are clamped into [kMinWeight, kMaxWeight].
  static constexpr double kMinWeight = 1.0 / 64;
  static constexpr double kMaxWeight = 64.0;

  /// One schedulable unit of work plus the metadata dispatch decisions
  /// read. `run` executes on the worker that dequeued it; `shed` fires
  /// instead (never both) when the deadline became unmeetable in queue.
  struct Task {
    std::string tenant;
    QueryPriority priority = QueryPriority::kNormal;
    /// Virtual deadline (0 = none) and explicit virtual arrival
    /// (< 0 = "starts at dispatch"); both in Options::now units.
    double deadline_seconds = 0;
    double arrival_seconds = -1;
    std::function<void()> run;
    /// Receives the wall-clock seconds the task sat queued.
    std::function<void(double queue_wall_seconds)> shed;
    /// Monotone enqueue sequence number, assigned by Enqueue() — the
    /// deterministic tie-break within a tenant queue.
    uint64_t seq = 0;
    std::chrono::steady_clock::time_point enqueued_at{};
  };

  struct Options {
    /// DRR weight for tenants absent from `tenant_weights`.
    double default_weight = 1.0;
    /// Per-tenant DRR weights, keyed by client_tag ("(untagged)" for the
    /// empty tag).
    std::map<std::string, double> tenant_weights;
    /// Max queued (not yet dispatched) tasks per tenant; 0 = unbounded.
    int per_tenant_queue_depth = 0;
    /// Max concurrently running tasks per tenant; 0 = unbounded.
    int per_tenant_max_concurrency = 0;
    /// The virtual clock shedding compares deadlines against (a serving
    /// session passes the shared pool's Now). Null disables shedding.
    std::function<double()> now;
    /// Testing seam: invoked under the scheduler lock at the instant of
    /// each dispatch with the chosen task and whether any strictly higher
    /// priority tier still had a dispatchable tenant (queued work below
    /// its concurrency cap) — which must never be true.
    std::function<void(const Task& task, bool higher_tier_dispatchable)>
        dispatch_probe;
  };

  /// Cumulative per-tenant scheduler counters (queue state + outcomes).
  struct TenantSched {
    double weight = 1.0;
    int64_t queued = 0;
    int64_t running = 0;
    int64_t dispatched = 0;
    int64_t sheds = 0;
    int64_t rejected = 0;
  };

  struct Stats {
    int64_t enqueued = 0;
    int64_t dispatched = 0;
    int64_t tenant_rejects = 0;
    int64_t sheds = 0;
    /// Full refill passes over a priority wheel (the DRR "rotation").
    int64_t wheel_rotations = 0;
    int64_t queued = 0;
    int64_t running = 0;
    /// Current queue depth per priority class (indexed by QueryPriority).
    int64_t queued_by_class[kNumPriorities] = {0, 0, 0};
    std::map<std::string, TenantSched> tenants;
  };

  explicit FairScheduler(Options options);
  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Queues `task` for dispatch. Fails with kResourceExhausted when the
  /// tenant is at its queue-depth cap (the caller owns the reject path —
  /// neither `run` nor `shed` fires for a rejected task). Thread-safe.
  Status Enqueue(Task task);

  /// Blocks until a task is dispatchable, moves it into `*out`, and
  /// returns true; the caller runs it and then calls OnComplete() with the
  /// task's tenant. Expired tasks encountered while scanning are shed
  /// (their `shed` callbacks fire on this thread, outside the scheduler
  /// lock) and never returned. Returns false once Shutdown() was called
  /// and every queued task has been dispatched or shed.
  bool Dequeue(Task* out);

  /// Releases one unit of `tenant`'s concurrency cap; call exactly once
  /// after a dequeued task's `run` finishes.
  void OnComplete(const std::string& tenant);

  /// Begins draining: Dequeue() keeps handing out queued work until the
  /// queues are empty, then returns false on every worker.
  void Shutdown();

  Stats stats() const;

  /// The effective (clamped) weight of `tenant`.
  double WeightOf(const std::string& tenant) const;

  /// The bucket key a client_tag schedules under ("(untagged)" for "").
  static std::string TenantKey(const std::string& client_tag);

 private:
  /// One tenant's FIFO at one priority tier plus its DRR wheel state.
  struct TenantQueue {
    std::deque<Task> tasks;
    double deficit = 0;
    /// True when the tenant (re-)entered the wheel since it last refilled
    /// — each wheel visit refills the deficit at most once.
    bool fresh = true;
    bool in_wheel = false;
  };

  struct TenantInfo {
    int64_t queued = 0;
    int64_t running = 0;
    int64_t dispatched = 0;
    int64_t sheds = 0;
    int64_t rejected = 0;
  };

  /// One full scan under mu_: sheds expired heads into `to_shed` and, when
  /// possible, moves the next dispatchable task into `*out`. Returns true
  /// iff a task was dispatched.
  bool ScanLocked(Task* out, std::vector<Task>* to_shed);
  /// One refill pass over tier `pri`'s wheel. Sets `*refilled` when any
  /// tenant gained deficit (another pass could make progress).
  bool ScanTierLocked(int pri, Task* out, std::vector<Task>* to_shed,
                      bool* refilled);
  /// Whether any tenant in a tier strictly above `pri` has queued work and
  /// spare concurrency (used by the dispatch probe).
  bool HigherTierDispatchableLocked(int pri) const;
  bool ExpiredLocked(const Task& task, double now) const;
  double WeightOfLocked(const std::string& tenant) const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool shutdown_ = false;
  uint64_t next_seq_ = 0;
  /// queues_[priority][tenant]; wheels_ hold the active tenants of each
  /// tier in activation order.
  std::map<std::string, TenantQueue> queues_[kNumPriorities];
  std::deque<std::string> wheels_[kNumPriorities];
  std::map<std::string, TenantInfo> tenants_;
  int64_t queued_ = 0;
  int64_t queued_by_class_[kNumPriorities] = {0, 0, 0};
  int64_t running_ = 0;
  int64_t enqueued_ = 0;
  int64_t dispatched_ = 0;
  int64_t tenant_rejects_ = 0;
  int64_t sheds_ = 0;
  int64_t wheel_rotations_ = 0;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_FAIR_SCHEDULER_H_
