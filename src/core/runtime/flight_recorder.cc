#include "core/runtime/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/telemetry_names.h"

namespace unify::core {

const char* ServeEventKindName(ServeEventKind kind) {
  switch (kind) {
    case ServeEventKind::kAdmit:
      return telemetry::kEventAdmit;
    case ServeEventKind::kStart:
      return telemetry::kEventStart;
    case ServeEventKind::kComplete:
      return telemetry::kEventComplete;
    case ServeEventKind::kReject:
      return telemetry::kEventReject;
    case ServeEventKind::kDeadlineMiss:
      return telemetry::kEventDeadlineMiss;
    case ServeEventKind::kReplan:
      return telemetry::kEventReplan;
    case ServeEventKind::kDegraded:
      return telemetry::kEventDegraded;
    case ServeEventKind::kSloBreach:
      return telemetry::kEventSloBreach;
    case ServeEventKind::kShed:
      return telemetry::kEventShed;
    case ServeEventKind::kTenantReject:
      return telemetry::kEventTenantReject;
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.capacity == 0) options_.capacity = 1;
  ring_.reserve(std::min<size_t>(options_.capacity, 256));
}

uint64_t FlightRecorder::Record(ServeEvent event) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  event.wall_seconds = wall;
  const uint64_t seq = event.seq;
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(event));
  } else {
    ring_[static_cast<size_t>(seq % options_.capacity)] = std::move(event);
  }
  return seq;
}

void FlightRecorder::RecordSlow(SlowQuery query) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.slow_queries == 0) return;
  slow_.push_back(std::move(query));
  std::sort(slow_.begin(), slow_.end(),
            [](const SlowQuery& a, const SlowQuery& b) {
              return a.total_seconds > b.total_seconds;
            });
  if (slow_.size() > options_.slow_queries) {
    slow_.resize(options_.slow_queries);
  }
}

std::vector<ServeEvent> FlightRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServeEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;
  } else {
    // Slot (next_seq_ % capacity) holds the oldest retained event.
    const size_t start = static_cast<size_t>(next_seq_ % options_.capacity);
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
  }
  return out;
}

std::vector<SlowQuery> FlightRecorder::slow_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::string FlightRecorder::ToJsonl() const {
  std::ostringstream os;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const ServeEvent& e : events()) {
    os << "{\"kind\":\"" << ServeEventKindName(e.kind) << "\",\"seq\":"
       << e.seq << ",\"wall_seconds\":" << num(e.wall_seconds)
       << ",\"query_id\":" << e.query_id;
    if (!e.client_tag.empty()) {
      os << ",\"client_tag\":\"" << JsonEscape(e.client_tag) << "\"";
    }
    if (!e.phase.empty()) {
      os << ",\"phase\":\"" << JsonEscape(e.phase) << "\"";
    }
    if (!e.detail.empty()) {
      os << ",\"detail\":\"" << JsonEscape(e.detail) << "\"";
    }
    if (e.queue_wall_seconds != 0) {
      os << ",\"queue_wall_seconds\":" << num(e.queue_wall_seconds);
    }
    if (e.plan_seconds != 0) {
      os << ",\"plan_seconds\":" << num(e.plan_seconds);
    }
    if (e.exec_seconds != 0) {
      os << ",\"exec_seconds\":" << num(e.exec_seconds);
    }
    if (e.total_seconds != 0) {
      os << ",\"total_seconds\":" << num(e.total_seconds);
    }
    os << "}\n";
  }
  return os.str();
}

std::string FlightRecorder::SlowQueriesToJsonl() const {
  std::ostringstream os;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  for (const SlowQuery& s : slow_queries()) {
    os << "{\"query_id\":" << s.query_id;
    if (!s.client_tag.empty()) {
      os << ",\"client_tag\":\"" << JsonEscape(s.client_tag) << "\"";
    }
    os << ",\"text\":\"" << JsonEscape(s.text) << "\""
       << ",\"total_seconds\":" << num(s.total_seconds)
       << ",\"plan_seconds\":" << num(s.plan_seconds)
       << ",\"exec_seconds\":" << num(s.exec_seconds)
       << ",\"has_trace\":" << (s.trace != nullptr ? "true" : "false")
       << "}\n";
  }
  return os.str();
}

}  // namespace unify::core
