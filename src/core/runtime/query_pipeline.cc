#include "core/runtime/query_pipeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/accuracy.h"
#include "common/string_util.h"
#include "common/telemetry_names.h"
#include "core/runtime/plan_analysis.h"
#include "core/runtime/unify.h"
#include "llm/llm_client.h"

namespace unify::core {

QueryPipeline::QueryPipeline(const UnifySystem& system,
                             const QueryRequest& request,
                             exec::VirtualLlmPool* shared_pool,
                             std::shared_ptr<Trace> trace, SpanId parent)
    : system_(system),
      request_(request),
      shared_pool_(shared_pool),
      parent_(parent) {
  ctx_.trace = std::move(trace);
}

QueryResult QueryPipeline::Run() {
  // Admission failures return bare: no trace, no metrics — the query never
  // entered the system.
  if (!Admit()) return std::move(ctx_.result);
  if (Parse() && Optimize()) {
    ExecutePlan();
  }
  Finalize();
  return std::move(ctx_.result);
}

bool QueryPipeline::Admit() {
  QueryResult& result = ctx_.result;
  result.client_tag = request_.client_tag;
  result.query_id = request_.query_id != 0 ? request_.query_id
                                           : StableHash64(request_.text);
  if (!system_.ready_) {
    result.status = Status::FailedPrecondition("Setup() not called");
    result.phase = QueryPhase::kAdmission;
    return false;
  }
  if (request_.text.empty()) {
    result.status = Status::InvalidArgument("empty query text");
    result.phase = QueryPhase::kAdmission;
    return false;
  }

  // The one per-query options resolution: every request override is
  // folded against the system-wide defaults here, and the rest of the
  // pipeline reads only the resolved values.
  ctx_.resolved = request_.overrides.ResolveAgainst(system_.options_);
  if (ctx_.trace == nullptr && ctx_.resolved.collect_trace) {
    ctx_.trace = std::make_shared<Trace>();
  }
  // Virtual arrival: explicit request time (closed-loop clients), else the
  // serving clock, else 0 for a standalone call.
  result.arrival_seconds =
      request_.arrival_seconds >= 0
          ? request_.arrival_seconds
          : (shared_pool_ != nullptr ? shared_pool_->Now() : 0.0);

  // Per-query metrics: a local registry installed as this thread's sink
  // (and, via PlanExecutor::Options::metrics_sink, on every executor
  // worker that touches this query). Instrumented sites record into the
  // global registry AND the installed sink, so result.metrics is exact
  // even when other queries run concurrently in the process.
  metrics_scope_.emplace(&ctx_.query_metrics);

  // Retry budget: one shared pool of virtual backoff/retry seconds per
  // query, drained by every thread that retries on its behalf. The
  // resolved request value, clamped so retrying can never spend past an
  // explicit deadline.
  double budget_seconds = ctx_.resolved.retry_budget_seconds;
  if (request_.deadline_seconds > 0) {
    budget_seconds = std::min(budget_seconds, request_.deadline_seconds);
  }
  ctx_.retry_budget.emplace(budget_seconds);
  // Covers planning + SCE on this thread; PlanExecutor installs the same
  // budget on its DAG/morsel workers via Options::retry_budget.
  budget_scope_.emplace(&*ctx_.retry_budget);

  // Shared-cache routing for this query's calls on this thread; the
  // executor re-installs the same choice on its DAG/morsel workers via
  // Options::use_llm_cache.
  cache_scope_.emplace(ctx_.resolved.use_llm_cache);

  root_ = std::make_unique<ScopedSpan>(ctx_.trace.get(),
                                       telemetry::kSpanQuery, parent_);
  root_->AddAttr("query", request_.text);
  if (!request_.client_tag.empty()) {
    root_->AddAttr("client", request_.client_tag);
  }
  return true;
}

bool QueryPipeline::Parse() {
  QueryResult& result = ctx_.result;
  // Logical plan generation (Section V).
  auto generated =
      system_.generator_->Generate(request_.text, ctx_.trace.get(),
                                   root_->id());
  if (!generated.ok()) {
    result.status = generated.status();
    result.phase = QueryPhase::kPlanning;
    return false;
  }
  result.plan_seconds += generated->planning_seconds;
  result.num_candidate_plans = static_cast<int>(generated->plans.size());
  result.used_fallback = generated->used_fallback;
  ctx_.generated = std::move(*generated);
  return true;
}

bool QueryPipeline::Optimize() {
  QueryResult& result = ctx_.result;
  // Physical plan generation + plan selection (Section VI), under the
  // request's per-query objective / mode overrides. The same oopts later
  // parameterize every mid-query Reoptimize call, so replans honor the
  // overrides too.
  ctx_.oopts = system_.optimizer_->options();
  ctx_.oopts.objective = ctx_.resolved.objective;
  ctx_.oopts.mode = ctx_.resolved.physical_mode;
  // The optimizer predicts and the executor runs under the same
  // intra-operator parallelism.
  ctx_.oopts.max_intra_op_parallelism = ctx_.resolved.max_intra_op_parallelism;
  auto physical = system_.optimizer_->SelectBest(ctx_.generated->plans,
                                                 ctx_.oopts, ctx_.trace.get(),
                                                 root_->id());
  if (!physical.ok()) {
    result.status = physical.status();
    result.phase = QueryPhase::kOptimization;
    return false;
  }
  result.plan_seconds += physical->optimize_llm_seconds;
  result.plan_debug = physical->DebugString();
  result.plan_explain = physical->Explain();
  result.predicted_exec_seconds = physical->est_makespan;
  result.predicted_exec_dollars = physical->est_total_dollars;

  // Deadline pre-check: if planning plus the *predicted* makespan already
  // overruns the budget, abort before spending execution-side LLM calls.
  if (request_.deadline_seconds > 0 &&
      result.plan_seconds + physical->est_makespan >
          request_.deadline_seconds) {
    result.status = Status::DeadlineExceeded(
        "predicted completion " +
        std::to_string(result.plan_seconds + physical->est_makespan) +
        "s exceeds deadline " + std::to_string(request_.deadline_seconds) +
        "s");
    result.phase = QueryPhase::kOptimization;
    return false;
  }
  ctx_.physical = std::move(*physical);
  return true;
}

void QueryPipeline::ExecutePlan() {
  QueryResult& result = ctx_.result;
  // Execution (Section III-C).
  ExecContext ectx;
  ectx.corpus = system_.corpus_;
  ectx.llm = system_.traced_llm_.get();
  ectx.doc_embedder = system_.doc_embedder_.get();
  ectx.doc_index = system_.doc_index_.get();
  ectx.custom_ops = system_.options_.custom_ops;
  ectx.llm_batch_size = system_.options_.llm_batch_size;
  PlanExecutor::Options eopts = system_.options_.exec;
  eopts.max_intra_op_parallelism = ctx_.resolved.max_intra_op_parallelism;
  eopts.reoptimize = ctx_.resolved.reoptimize;
  eopts.reoptimize_qerror_threshold =
      ctx_.resolved.reoptimize_qerror_threshold;
  eopts.max_reoptimizations = ctx_.resolved.max_reoptimizations;
  eopts.shared_pool = shared_pool_;
  // Execution streams become ready once planning finishes on the virtual
  // clock (planning runs on the planner tier, not the worker pool).
  eopts.start_seconds = result.arrival_seconds + result.plan_seconds;
  eopts.metrics_sink = &ctx_.query_metrics;
  eopts.retry_budget = &*ctx_.retry_budget;
  eopts.graceful_degradation = ctx_.resolved.graceful_degradation;
  eopts.use_llm_cache = ctx_.resolved.use_llm_cache;
  PlanExecutor executor(ectx, eopts);

  // The plan that actually ran: the optimizer's choice, or — after an
  // adopted mid-query replan — the re-lowered plan. Analysis and
  // cost-model feedback must see this one, while plan_debug /
  // plan_explain / predicted_* keep reporting the original optimization.
  PhysicalPlan executed_plan = *ctx_.physical;
  ExecutionResult exec;
  if (!ctx_.resolved.reoptimize) {
    // The historical single-shot path, byte-identical to previous
    // releases.
    exec = executor.Execute(*ctx_.physical, ctx_.trace.get(), root_->id());
  } else {
    // The resumable engine (docs/replanning.md): execute one node at a
    // time in virtual dispatch order, pause at materialization points
    // whose observed cardinality diverges from the estimate, re-optimize
    // the un-executed suffix there.
    PlanExecutor::ExecutionState state;
    executor.Begin(*ctx_.physical, state, ctx_.trace.get(), root_->id());
    while (auto request = executor.Run(state)) {
      ConsiderReplan(*request, executor, state);
    }
    exec = executor.Finish(state);
    result.replans = state.replans;
    executed_plan = state.plan;
  }
  result.exec_seconds = exec.virtual_seconds;
  result.exec_dollars = exec.llm_dollars_total;
  result.timeline = exec.timeline;
  result.adjusted = exec.adjusted;
  result.answer = exec.answer;
  result.status = exec.status;
  result.degraded = exec.degraded;
  result.degraded_detail = exec.degraded_detail;
  if (!result.status.ok()) {
    result.phase = QueryPhase::kExecution;
  } else if (request_.deadline_seconds > 0 &&
             result.plan_seconds + result.exec_seconds >
                 request_.deadline_seconds) {
    // Deadline post-check on the measured virtual completion (the answer
    // stays attached for diagnostics).
    result.status = Status::DeadlineExceeded(
        "completed at " +
        std::to_string(result.plan_seconds + result.exec_seconds) +
        "s, after the " + std::to_string(request_.deadline_seconds) +
        "s deadline");
    result.phase = QueryPhase::kExecution;
    // A degraded answer that also missed its deadline reports the miss.
    result.degraded = false;
    result.degraded_detail.clear();
  }
  Analyze(executor, executed_plan);
}

void QueryPipeline::ConsiderReplan(const ReplanRequest& request,
                                   PlanExecutor& executor,
                                   PlanExecutor::ExecutionState& state) {
  AccuracyLedger::Global().RecordReplanConsidered();
  ReplanRecord record;
  record.trigger_node = request.node;
  record.trigger_var = request.output_var;
  record.observed_card = request.observed_card;
  record.estimated_card = request.estimated_card;
  record.qerror = request.qerror;
  record.elapsed_seconds = request.elapsed_seconds;

  // The planner-tier sanity check (PromptType::kReplanDecision), charged
  // to the query: its virtual seconds become the replan barrier's length
  // and its dollars join the query's execution spend.
  llm::LlmCall call;
  call.type = llm::PromptType::kReplanDecision;
  call.tier = llm::ModelTier::kPlanner;
  call.fields["query"] = request_.text;
  call.fields["node"] = request.output_var;
  call.fields["observed_card"] = FormatDouble(request.observed_card, 0);
  llm::LlmResult verdict = system_.traced_llm_->Call(call);
  record.decision_seconds = verdict.seconds;
  record.decision_dollars = verdict.dollars;

  // Suffix re-lowering under the measured cardinalities, costed from the
  // pause's end (trigger finish + decision time) — deterministic, keyed
  // on the observations only.
  const PhysicalPlan* adopt_plan = nullptr;
  StatusOr<ReoptimizeResult> reopt = system_.optimizer_->Reoptimize(
      state.plan, request.executed,
      CardinalityOverrides{request.observed_cards}, ctx_.oopts,
      request.elapsed_seconds + verdict.seconds);
  const bool endorsed =
      verdict.status.ok() && verdict.Get("verdict") == "reoptimize";
  if (endorsed && reopt.ok()) {
    record.nodes_rechosen = reopt->nodes_rechosen;
    record.est_bias = reopt->est_bias;
    if (ctx_.oopts.objective == OptimizeObjective::kDollars) {
      record.old_suffix_cost = reopt->old_suffix_dollars;
      record.new_suffix_cost = reopt->new_suffix_dollars;
    } else {
      record.old_suffix_cost = reopt->old_suffix_makespan;
      record.new_suffix_cost = reopt->new_suffix_makespan;
    }
    // Adopt only a strictly better predicted cost-to-go: ties keep the
    // plan in flight (re-lowering for free buys nothing but churn).
    if (reopt->changed &&
        record.new_suffix_cost < record.old_suffix_cost * (1 - 1e-9)) {
      adopt_plan = &reopt->plan;
    }
  }
  if (adopt_plan != nullptr) {
    AccuracyLedger::Global().RecordReplanTriggered();
  }

  std::ostringstream detail;
  detail << "replan @ t=" << FormatDouble(request.elapsed_seconds, 1)
         << "s: " << request.output_var << " observed "
         << FormatDouble(request.observed_card, 0) << " vs est "
         << FormatDouble(request.estimated_card, 0) << " (q-err "
         << FormatDouble(request.qerror, 2) << ") -> ";
  if (adopt_plan != nullptr) {
    detail << "adopted (" << record.nodes_rechosen
           << " nodes re-lowered, suffix est "
           << FormatDouble(record.old_suffix_cost, 3) << " -> "
           << FormatDouble(record.new_suffix_cost, 3) << ")";
  } else {
    detail << "kept plan";
  }
  record.detail = detail.str();

  executor.ApplyReplan(state, std::move(record), adopt_plan);
}

void QueryPipeline::Analyze(PlanExecutor& executor,
                            const PhysicalPlan& executed_plan) {
  QueryResult& result = ctx_.result;
  // EXPLAIN ANALYZE + accuracy ledger: the optimizer's estimates next to
  // what execution measured, per node and plan-wide.
  result.plan_analysis =
      BuildPlanAnalysis(executed_plan, executor, system_.cost_model_,
                        ctx_.oopts.objective, result.replans);
  if (!result.replans.empty()) {
    // Lift the executor's query-relative node times onto the absolute
    // clock the replan predictions used: the shared pool's
    // execution-ready time, or 0 for a private pool.
    const double base_seconds =
        shared_pool_ != nullptr
            ? result.arrival_seconds + result.plan_seconds
            : 0.0;
    AuditReplanOutcomes(result.replans, executor, ctx_.oopts.objective,
                        base_seconds);
  }
  auto& ledger = AccuracyLedger::Global();
  if (result.exec_seconds > 0) {
    ledger.RecordMakespanRelError(
        std::abs(result.predicted_exec_seconds - result.exec_seconds) /
        result.exec_seconds);
  }
  if (result.exec_dollars > 0) {
    ledger.RecordDollarsRelError(
        std::abs(result.predicted_exec_dollars - result.exec_dollars) /
        result.exec_dollars);
  }

  // Feed measured costs back into the model (running calibration), against
  // the plan that actually ran — after an adopted replan the suffix nodes'
  // impls are the re-lowered ones. Off when cost_feedback is disabled,
  // keeping plan choice independent of which queries ran earlier.
  if (system_.options_.cost_feedback) {
    const auto& stats = executor.node_stats();
    for (size_t i = 0; i < stats.size() && i < executed_plan.nodes.size();
         ++i) {
      if (stats[i].llm_calls == 0) continue;
      size_t card = static_cast<size_t>(
          std::max(1.0, executed_plan.nodes[i].est_in_card));
      system_.cost_model_.Record(executed_plan.nodes[i].logical.op_name,
                                 executed_plan.nodes[i].impl, card,
                                 stats[i].llm_seconds, stats[i].cpu_seconds,
                                 stats[i].llm_dollars);
    }
  }
}

void QueryPipeline::Finalize() {
  QueryResult& result = ctx_.result;
  result.total_seconds = result.plan_seconds + result.exec_seconds;
  result.completion_seconds = result.arrival_seconds + result.total_seconds;
  if (result.status.ok()) {
    result.phase =
        result.degraded ? QueryPhase::kDegraded : QueryPhase::kComplete;
  }
  result.metrics = ctx_.query_metrics.Snapshot();
  // Exact per-query cache attribution: the llm.cache.* counters were
  // dual-written into this query's sink by every thread that worked on
  // it, so these are this query's items alone.
  auto cache_counter = [&](const char* name) -> int64_t {
    auto it = result.metrics.counters.find(name);
    return it == result.metrics.counters.end()
               ? 0
               : static_cast<int64_t>(it->second + 0.5);
  };
  result.cache_item_hits = cache_counter(telemetry::kMetricLlmCacheHits);
  result.cache_coalesced = cache_counter(telemetry::kMetricLlmCacheCoalesced);
  // Attach the trace and this query's metrics delta; the llm.*, plan.*,
  // sce.* and exec.* counter deltas become root-span attributes so they
  // survive into the exported Chrome JSON.
  if (ctx_.trace != nullptr) {
    root_->AddAttr("status", result.status.ok()
                                 ? std::string("ok")
                                 : result.status.ToString());
    root_->AddAttr("phase", QueryPhaseName(result.phase));
    root_->AddAttr("plan_seconds", result.plan_seconds);
    root_->AddAttr("exec_seconds", result.exec_seconds);
    root_->AddAttr("total_seconds", result.total_seconds);
    root_->AddAttr("exec_dollars", result.exec_dollars);
    if (!result.replans.empty()) {
      root_->AddAttr("replans", static_cast<double>(result.replans.size()));
    }
    root_->SetVirtualInterval(0, result.total_seconds);
    for (const auto& [name, value] : result.metrics.counters) {
      root_->AddAttr(name, value);
    }
  }
  result.trace = ctx_.trace;
}

}  // namespace unify::core
