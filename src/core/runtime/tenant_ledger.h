#ifndef UNIFY_CORE_RUNTIME_TENANT_LEDGER_H_
#define UNIFY_CORE_RUNTIME_TENANT_LEDGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/stats.h"
#include "core/runtime/query.h"

namespace unify::core {

/// One tenant's cumulative usage, keyed by QueryRequest::client_tag.
/// Dollars/tokens/cache figures come from the exact per-query attribution
/// (QueryResult::metrics), so summing any field across tenants reproduces
/// the corresponding global counter's delta over the same interval.
struct TenantUsage {
  /// Served queries that completed (any phase, including failures).
  int64_t queries = 0;
  /// Admission-control rejections (never reached a worker).
  int64_t rejected = 0;
  /// Completed queries with a non-OK status (deadline misses included).
  int64_t failed = 0;
  int64_t deadline_misses = 0;
  /// Completions with QueryPhase::kDegraded.
  int64_t degraded = 0;
  /// LLM spend attributed to the tenant's queries (planning + execution
  /// + SCE sampling — the full llm.dollars attribution, not just
  /// exec_dollars).
  double dollars = 0;
  int64_t in_tokens = 0;
  int64_t out_tokens = 0;
  int64_t llm_calls = 0;
  int64_t cache_item_hits = 0;
  int64_t cache_coalesced = 0;
  /// Total (virtual) latency distribution of completed queries — a
  /// bounded reservoir, so long-lived tenants stay O(1) in memory.
  Histogram latency;
};

/// The per-tenant usage ledger behind `/tenants`, the `unify_tenant_*`
/// labeled Prometheus series, UnifyService::Stats::tenants, and the
/// shell's `\tenants` report. A mutexed map of TenantUsage keyed by
/// client_tag (the empty tag is bucketed as "(untagged)"), fed by
/// UnifyService on every rejection and completion. Thread-safe.
class TenantLedger {
 public:
  /// The bucket untagged requests are accounted under.
  static constexpr const char* kUntagged = "(untagged)";

  TenantLedger() = default;
  TenantLedger(const TenantLedger&) = delete;
  TenantLedger& operator=(const TenantLedger&) = delete;

  /// Accounts one completed query from its result (exact per-query
  /// metrics, phase, status, latency).
  void RecordCompletion(const QueryResult& result);

  /// Accounts one admission-control rejection.
  void RecordRejection(const std::string& client_tag);

  /// Point-in-time copy of every tenant's usage.
  std::map<std::string, TenantUsage> snapshot() const;

  /// Tenants ever seen (completed or rejected).
  size_t tenant_count() const;

  /// Adds the `tenant.*{tenant="..."}` labeled series to `snap` so a
  /// single ToPrometheusText() call renders global and per-tenant metrics
  /// together (docs/observability.md, "Per-tenant accounting").
  void AnnotateSnapshot(MetricsSnapshot* snap) const;

  /// One JSON object per tenant, keyed by tag (the `/tenants` route).
  std::string ToJson() const;

  /// Aligned text table for the shell's `\tenants` report.
  std::string ToText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TenantUsage> tenants_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_TENANT_LEDGER_H_
