#ifndef UNIFY_CORE_RUNTIME_PLAN_ANALYSIS_H_
#define UNIFY_CORE_RUNTIME_PLAN_ANALYSIS_H_

#include <vector>

#include "core/physical/cost_model.h"
#include "core/physical/optimizer.h"
#include "core/physical/physical_plan.h"
#include "core/runtime/executor.h"
#include "core/runtime/query.h"

namespace unify::core {

/// Builds the EXPLAIN ANALYZE records for one executed plan: the
/// optimizer's estimates next to what execution measured, in the plan's
/// topological render order, with replanned-node markers and (when the
/// Section V-D fallback produced the answer) a trailing synthetic record
/// for the fallback generation. Every executed node also feeds the
/// process-wide AccuracyLedger: its cardinality q-error and the hindsight
/// impl-choice audit (is the chosen impl still the cost-model argmin when
/// re-costed with measured cardinalities under `objective`?).
std::vector<PlanNodeAnalysis> BuildPlanAnalysis(
    const PhysicalPlan& plan, const PlanExecutor& executor,
    const CostModel& cost_model, OptimizeObjective objective,
    const std::vector<ReplanRecord>& replans);

/// Audits the adopted mid-query replans of one completed query against
/// what the suffix actually cost (docs/replanning.md): an adopted replan
/// is "improved" when the measured suffix outcome beats the predicted
/// cost-to-go of keeping the old plan — suffix completion time under
/// kTime, suffix dollars under kDollars. `base_seconds` is the absolute
/// virtual time execution became ready (0 for a private pool), lifting
/// the executor's query-relative node times onto the clock the record's
/// predictions use. Outcomes are recorded into the AccuracyLedger
/// (plan.reoptimize.improved) and returned as the number of improved
/// replans.
int AuditReplanOutcomes(const std::vector<ReplanRecord>& replans,
                        const PlanExecutor& executor,
                        OptimizeObjective objective, double base_seconds);

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_PLAN_ANALYSIS_H_
