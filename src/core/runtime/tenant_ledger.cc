#include "core/runtime/tenant_ledger.h"

#include <cstdio>
#include <sstream>

#include "common/status.h"
#include "common/telemetry_names.h"
#include "common/trace.h"

namespace unify::core {

namespace {

const std::string& BucketFor(const std::string& client_tag) {
  static const std::string* untagged =
      new std::string(TenantLedger::kUntagged);
  return client_tag.empty() ? *untagged : client_tag;
}

/// Sums `base` and every `base.<suffix>` counter: the LLM telemetry is
/// recorded per prompt type (`llm.calls.eval_predicate`, ...), and the
/// ledger accounts the whole family to the tenant.
double SumCounters(const MetricsSnapshot& metrics, const char* base) {
  const std::string stem(base);
  double sum = 0;
  for (auto it = metrics.counters.lower_bound(stem);
       it != metrics.counters.end(); ++it) {
    const std::string& name = it->first;
    if (name.compare(0, stem.size(), stem) != 0) break;
    if (name.size() == stem.size() || name[stem.size()] == '.') {
      sum += it->second;
    }
  }
  return sum;
}

int64_t SumCountersAsInt(const MetricsSnapshot& metrics, const char* base) {
  return static_cast<int64_t>(SumCounters(metrics, base) + 0.5);
}

}  // namespace

void TenantLedger::RecordCompletion(const QueryResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage& usage = tenants_[BucketFor(result.client_tag)];
  usage.queries += 1;
  if (!result.status.ok()) usage.failed += 1;
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    usage.deadline_misses += 1;
  }
  if (result.phase == QueryPhase::kDegraded) usage.degraded += 1;
  usage.dollars += SumCounters(result.metrics, telemetry::kMetricLlmDollars);
  usage.in_tokens +=
      SumCountersAsInt(result.metrics, telemetry::kMetricLlmInTokens);
  usage.out_tokens +=
      SumCountersAsInt(result.metrics, telemetry::kMetricLlmOutTokens);
  usage.llm_calls +=
      SumCountersAsInt(result.metrics, telemetry::kMetricLlmCalls);
  usage.cache_item_hits += result.cache_item_hits;
  usage.cache_coalesced += result.cache_coalesced;
  usage.latency.Add(result.total_seconds);
}

void TenantLedger::RecordRejection(const std::string& client_tag) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[BucketFor(client_tag)].rejected += 1;
}

std::map<std::string, TenantUsage> TenantLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_;
}

size_t TenantLedger::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.size();
}

void TenantLedger::AnnotateSnapshot(MetricsSnapshot* snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tag, usage] : tenants_) {
    auto labeled = [&tag](const char* base) {
      return LabeledMetricName(base, "tenant", tag);
    };
    snap->counters[labeled(telemetry::kMetricTenantQueries)] =
        static_cast<double>(usage.queries);
    snap->counters[labeled(telemetry::kMetricTenantRejected)] =
        static_cast<double>(usage.rejected);
    snap->counters[labeled(telemetry::kMetricTenantFailed)] =
        static_cast<double>(usage.failed);
    snap->counters[labeled(telemetry::kMetricTenantDeadlineMisses)] =
        static_cast<double>(usage.deadline_misses);
    snap->counters[labeled(telemetry::kMetricTenantDegraded)] =
        static_cast<double>(usage.degraded);
    snap->counters[labeled(telemetry::kMetricTenantDollars)] = usage.dollars;
    snap->counters[labeled(telemetry::kMetricTenantInTokens)] =
        static_cast<double>(usage.in_tokens);
    snap->counters[labeled(telemetry::kMetricTenantOutTokens)] =
        static_cast<double>(usage.out_tokens);
    snap->counters[labeled(telemetry::kMetricTenantLlmCalls)] =
        static_cast<double>(usage.llm_calls);
    snap->counters[labeled(telemetry::kMetricTenantCacheHits)] =
        static_cast<double>(usage.cache_item_hits);
    snap->counters[labeled(telemetry::kMetricTenantCacheCoalesced)] =
        static_cast<double>(usage.cache_coalesced);
    if (usage.latency.count() > 0) {
      snap->histograms.emplace(labeled(telemetry::kMetricTenantLatency),
                               usage.latency);
    }
  }
}

std::string TenantLedger::ToJson() const {
  std::ostringstream os;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  os << "{";
  bool first = true;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tag, usage] : tenants_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(tag) << "\":{"
       << "\"queries\":" << usage.queries
       << ",\"rejected\":" << usage.rejected
       << ",\"failed\":" << usage.failed
       << ",\"deadline_misses\":" << usage.deadline_misses
       << ",\"degraded\":" << usage.degraded
       << ",\"dollars\":" << num(usage.dollars)
       << ",\"in_tokens\":" << usage.in_tokens
       << ",\"out_tokens\":" << usage.out_tokens
       << ",\"llm_calls\":" << usage.llm_calls
       << ",\"cache_item_hits\":" << usage.cache_item_hits
       << ",\"cache_coalesced\":" << usage.cache_coalesced;
    if (usage.latency.count() > 0) {
      os << ",\"latency_seconds\":{\"count\":" << usage.latency.count()
         << ",\"mean\":" << num(usage.latency.Mean())
         << ",\"p50\":" << num(usage.latency.Quantile(0.5))
         << ",\"p99\":" << num(usage.latency.Quantile(0.99)) << "}";
    }
    os << "}";
  }
  os << "}\n";
  return os.str();
}

std::string TenantLedger::ToText() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "  %-16s %8s %7s %6s %6s %5s %10s %8s %8s %8s\n", "tenant",
                "queries", "reject", "miss", "degr", "fail", "dollars",
                "p50 s", "p99 s", "hits");
  os << line;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [tag, usage] : tenants_) {
    const bool has_latency = usage.latency.count() > 0;
    std::snprintf(
        line, sizeof(line),
        "  %-16s %8lld %7lld %6lld %6lld %5lld %10.4f %8.1f %8.1f %8lld\n",
        tag.c_str(), static_cast<long long>(usage.queries),
        static_cast<long long>(usage.rejected),
        static_cast<long long>(usage.deadline_misses),
        static_cast<long long>(usage.degraded),
        static_cast<long long>(usage.failed), usage.dollars,
        has_latency ? usage.latency.Quantile(0.5) : 0.0,
        has_latency ? usage.latency.Quantile(0.99) : 0.0,
        static_cast<long long>(usage.cache_item_hits + usage.cache_coalesced));
    os << line;
  }
  if (tenants_.empty()) os << "  (no tenants recorded yet)\n";
  return os.str();
}

}  // namespace unify::core
