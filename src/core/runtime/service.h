#ifndef UNIFY_CORE_RUNTIME_SERVICE_H_
#define UNIFY_CORE_RUNTIME_SERVICE_H_

#include <cstdint>
#include <future>
#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "core/runtime/flight_recorder.h"
#include "core/runtime/query.h"
#include "core/runtime/unify.h"
#include "exec/virtual_pool.h"

namespace unify::core {

/// The concurrent serving layer: a thread-safe facade over a UnifySystem
/// that accepts Submit() calls from any number of client threads, plans
/// and executes them on a bounded worker pool, and schedules every
/// in-flight query's operator streams on ONE shared virtual LLM server
/// pool — so the virtual times in each QueryResult reflect cross-query
/// queueing for the paper's 4 simulated servers, not a private pool per
/// query.
///
/// Admission control keeps the service responsive under overload: when
/// queued + running requests reach Options::max_queue_depth, Submit()
/// resolves immediately with kResourceExhausted (phase kAdmission)
/// instead of growing the queue without bound. Per-query deadlines
/// (QueryRequest::deadline_seconds, with an optional service-wide
/// default) bound each query's virtual completion.
class UnifyService {
 public:
  struct Options {
    /// Worker threads planning/executing queries concurrently.
    int num_workers = 4;
    /// Queued + running requests beyond which Submit() rejects with
    /// kResourceExhausted.
    int max_queue_depth = 64;
    /// Deadline applied to requests that carry none (0 = unlimited).
    double default_deadline_seconds = 0;
    /// Intra-operator parallelism applied to requests that carry no
    /// max_intra_op_parallelism override (0 = keep the system-wide
    /// UnifyOptions::exec setting).
    int default_max_intra_op_parallelism = 0;
    /// Flight-recorder event ring size (postmortem window).
    size_t flight_recorder_capacity = 256;
    /// Slowest queries the flight recorder retains with their traces.
    size_t slow_query_capacity = 8;
  };

  /// Serving counters (wall-clock process state, not virtual time).
  struct Stats {
    int64_t submitted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;
    int64_t deadline_exceeded = 0;
    /// Served queries that finished with QueryPhase::kDegraded.
    int64_t degraded = 0;
    /// Requests currently queued or being served.
    int64_t inflight = 0;
    /// The shared pool's monotonic virtual clock.
    double pool_now = 0;
    /// Total virtual busy seconds across the pool's servers.
    double pool_busy_seconds = 0;
    /// The system's shared cross-query LLM answer cache (all queries
    /// served through this service share one instance; docs/caching.md).
    llm::CacheStats cache;
  };

  /// `system` must have completed Setup() and outlive the service. The
  /// shared virtual pool is sized from the system's exec.num_servers.
  UnifyService(const UnifySystem* system, Options options);

  /// Drains in-flight queries before returning.
  ~UnifyService() = default;

  UnifyService(const UnifyService&) = delete;
  UnifyService& operator=(const UnifyService&) = delete;

  /// Enqueues one query; the future resolves when it completes (or
  /// immediately, with phase kAdmission, when admission control rejects
  /// it). Thread-safe.
  std::future<QueryResult> Submit(QueryRequest request);

  /// Synchronous convenience: Submit() and wait.
  QueryResult Answer(QueryRequest request);
  QueryResult Answer(const std::string& text);

  Stats stats() const;

  /// The shared virtual LLM server pool (its Now() is the serving clock).
  const exec::VirtualLlmPool& pool() const { return pool_; }

  /// The serving flight recorder: bounded event ring (admission, start,
  /// completion, rejection, deadline-miss, replan) plus the retained
  /// top-K slow queries. Thread-safe to read while serving.
  const FlightRecorder& flight_recorder() const { return recorder_; }

  const UnifySystem& system() const { return *system_; }
  const Options& options() const { return options_; }

 private:
  /// Runs one admitted request on a worker thread.
  QueryResult Serve(const QueryRequest& request, double queue_wall_seconds);

  const UnifySystem* system_;
  Options options_;
  exec::VirtualLlmPool pool_;
  FlightRecorder recorder_;

  mutable std::mutex mu_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  int64_t deadline_exceeded_ = 0;
  int64_t degraded_ = 0;
  int64_t inflight_ = 0;

  /// Last member: destroyed (and drained) first, so worker tasks never
  /// outlive the state above.
  ThreadPool workers_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_SERVICE_H_
