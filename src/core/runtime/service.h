#ifndef UNIFY_CORE_RUNTIME_SERVICE_H_
#define UNIFY_CORE_RUNTIME_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/runtime/fair_scheduler.h"
#include "core/runtime/flight_recorder.h"
#include "core/runtime/query.h"
#include "core/runtime/slo_tracker.h"
#include "core/runtime/tenant_ledger.h"
#include "core/runtime/unify.h"
#include "exec/virtual_pool.h"
#include "serving/http_endpoint.h"

namespace unify::core {

/// The concurrent serving layer: a thread-safe facade over a UnifySystem
/// that accepts Submit() calls from any number of client threads, plans
/// and executes them on a bounded worker pool, and schedules every
/// in-flight query's operator streams on ONE shared virtual LLM server
/// pool — so the virtual times in each QueryResult reflect cross-query
/// queueing for the paper's 4 simulated servers, not a private pool per
/// query.
///
/// Admission control keeps the service responsive under overload: when
/// queued + running requests reach Options::max_queue_depth, Submit()
/// resolves immediately with kResourceExhausted (phase kAdmission)
/// instead of growing the queue without bound. Per-query deadlines
/// (QueryRequest::deadline_seconds, with an optional service-wide
/// default) bound each query's virtual completion.
///
/// Operator-facing observability (docs/observability.md): every
/// completion feeds a per-tenant usage ledger (keyed by
/// QueryRequest::client_tag) and an SLO burn-rate tracker, and
/// Options::http_port starts an embedded HTTP endpoint serving /metrics,
/// health/readiness probes, and the postmortem surfaces to an external
/// monitoring stack.
class UnifyService {
 public:
  /// How Submit() hands admitted work to the workers.
  enum class Scheduler {
    /// The original single FIFO queue — behavior and telemetry are
    /// byte-identical to builds that predate the fair scheduler.
    kFifo,
    /// core::FairScheduler: per-tenant DRR queues with priority tiers,
    /// per-tenant caps, and queue-age shedding (docs/api.md,
    /// "Scheduling & tenant isolation").
    kFair,
  };

  struct Options {
    /// Worker threads planning/executing queries concurrently.
    int num_workers = 4;
    /// Queued + running requests beyond which Submit() rejects with
    /// kResourceExhausted.
    int max_queue_depth = 64;
    /// Dispatch policy between Submit() and the workers (default kFifo).
    Scheduler scheduler = Scheduler::kFifo;
    /// Fair mode: DRR weight for tenants absent from `tenant_weights`
    /// (clamped into [FairScheduler::kMinWeight, kMaxWeight]).
    double default_tenant_weight = 1.0;
    /// Fair mode: per-tenant DRR weights keyed by client_tag.
    std::map<std::string, double> tenant_weights;
    /// Fair mode: max queued requests per tenant; beyond it Submit()
    /// rejects the tenant with kResourceExhausted before the global
    /// max_queue_depth trips for everyone. 0 = unbounded.
    int per_tenant_queue_depth = 0;
    /// Fair mode: max concurrently served requests per tenant (excess
    /// stays queued). 0 = unbounded.
    int per_tenant_max_concurrency = 0;
    /// Deadline applied to requests that carry none (0 = unlimited).
    double default_deadline_seconds = 0;
    /// Intra-operator parallelism applied to requests that carry no
    /// max_intra_op_parallelism override (0 = keep the system-wide
    /// UnifyOptions::exec setting).
    int default_max_intra_op_parallelism = 0;
    /// Flight-recorder event ring size (postmortem window).
    size_t flight_recorder_capacity = 256;
    /// Slowest queries the flight recorder retains with their traces.
    size_t slow_query_capacity = 8;
    /// Embedded HTTP observability endpoint (loopback only): 0 = off
    /// (the default — byte-identical to a service without the endpoint),
    /// > 0 = bind that port, -1 = bind an OS-picked free port (tests;
    /// read it back from http_port()). Routes are listed in
    /// docs/observability.md, "HTTP endpoint".
    int http_port = 0;
    /// SLO latency objective for served queries (virtual total_seconds);
    /// 0 = availability-only SLO (any OK completion is good).
    double slo_latency_seconds = 0;
    /// SLO target good-fraction (error budget = 1 - slo_target).
    double slo_target = 0.999;
  };

  /// Serving counters (wall-clock process state, not virtual time).
  struct Stats {
    int64_t submitted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;
    int64_t deadline_exceeded = 0;
    /// Served queries that finished with QueryPhase::kDegraded.
    int64_t degraded = 0;
    /// Queued requests failed by the fair scheduler because their
    /// deadline could no longer be met (fair mode only; these count in
    /// neither `completed` nor `deadline_exceeded`).
    int64_t shed = 0;
    /// Requests currently queued or being served.
    int64_t inflight = 0;
    /// Wall-clock seconds since the service was constructed.
    double uptime_seconds = 0;
    /// The shared pool's monotonic virtual clock.
    double pool_now = 0;
    /// Total virtual busy seconds across the pool's servers.
    double pool_busy_seconds = 0;
    /// The system's shared cross-query LLM answer cache (all queries
    /// served through this service share one instance; docs/caching.md).
    llm::CacheStats cache;
    /// SLO burn-rate state as of now (docs/observability.md, "SLOs").
    SloTracker::State slo;
    /// Per-tenant usage, keyed by client_tag ("(untagged)" for requests
    /// without one).
    std::map<std::string, TenantUsage> tenants;
    /// True when Options::scheduler == Scheduler::kFair; `sched` is only
    /// populated then.
    bool fair_scheduler = false;
    /// Fair-scheduler queue state and counters (per-tenant queue depths,
    /// dispatches, sheds, tenant rejects, wheel rotations).
    FairScheduler::Stats sched;
  };

  /// `system` must have completed Setup() and outlive the service. The
  /// shared virtual pool is sized from the system's exec.num_servers.
  UnifyService(const UnifySystem* system, Options options);

  /// Stops the HTTP endpoint (joining all of its connections), then
  /// drains in-flight queries before returning.
  ~UnifyService();

  UnifyService(const UnifyService&) = delete;
  UnifyService& operator=(const UnifyService&) = delete;

  /// Enqueues one query; the future resolves when it completes (or
  /// immediately, with phase kAdmission, when admission control rejects
  /// it). Thread-safe.
  std::future<QueryResult> Submit(QueryRequest request);

  /// Synchronous convenience: Submit() and wait.
  QueryResult Answer(QueryRequest request);
  QueryResult Answer(const std::string& text);

  Stats stats() const;

  /// The shared virtual LLM server pool (its Now() is the serving clock).
  const exec::VirtualLlmPool& pool() const { return pool_; }

  /// The serving flight recorder: bounded event ring (admission, start,
  /// completion, rejection, deadline-miss, replan, SLO breach) plus the
  /// retained top-K slow queries. Thread-safe to read while serving.
  const FlightRecorder& flight_recorder() const { return recorder_; }

  /// The per-tenant usage ledger (thread-safe to read while serving).
  const TenantLedger& tenant_ledger() const { return tenant_ledger_; }

  /// The fair scheduler; null in kFifo mode. Read its state via
  /// stats().sched.
  const FairScheduler* fair_scheduler() const { return sched_.get(); }

  /// The SLO burn-rate tracker; read its state via stats().slo.
  const SloTracker& slo_tracker() const { return slo_; }

  /// The bound port of the embedded HTTP endpoint; 0 when disabled (or
  /// when binding failed — a warning is logged and serving continues
  /// without the endpoint).
  int http_port() const {
    return http_ != nullptr && http_->running() ? http_->port() : 0;
  }

  const UnifySystem& system() const { return *system_; }
  const Options& options() const { return options_; }

 private:
  /// Runs one admitted request on a worker thread.
  QueryResult Serve(const QueryRequest& request, double queue_wall_seconds);

  /// Fair mode's Submit() tail: admission + enqueue into sched_.
  void SubmitFair(std::shared_ptr<std::promise<QueryResult>> promise,
                  QueryRequest request, uint64_t query_id);

  /// Fair mode: one dedicated worker's Dequeue/run/OnComplete loop.
  void SchedulerWorkerLoop();

  /// Fair mode: resolves a queued request the scheduler shed (deadline
  /// unmeetable) with kDeadlineExceeded at phase kAdmission.
  QueryResult ShedResult(const QueryRequest& request, uint64_t query_id,
                         double queue_wall_seconds);

  /// Wall-clock seconds since construction (the SLO/uptime clock).
  double UptimeSeconds() const;

  /// Registers the route handlers and starts the endpoint.
  void StartHttpEndpoint();
  serving::HttpResponse HandleMetrics() const;
  serving::HttpResponse HandleReadyz() const;
  serving::HttpResponse HandleStatusz() const;

  const UnifySystem* system_;
  Options options_;
  exec::VirtualLlmPool pool_;
  FlightRecorder recorder_;
  TenantLedger tenant_ledger_;
  SloTracker slo_;
  std::chrono::steady_clock::time_point epoch_;

  /// Lock order (see the audit note in service.cc): `mu_` is the
  /// service's root lock; the TenantLedger, FairScheduler, FlightRecorder,
  /// SloTracker, and metrics-registry locks are leaves that may be
  /// acquired WHILE holding `mu_` but never hold `mu_` themselves (none of
  /// them calls back into the service). Counter updates and their matching
  /// ledger/scheduler mutations happen under one `mu_` critical section,
  /// and stats() samples under the same section, so a Stats snapshot is
  /// internally consistent (counters never disagree with the tenant map).
  mutable std::mutex mu_;
  int64_t submitted_ = 0;
  int64_t rejected_ = 0;
  int64_t completed_ = 0;
  int64_t deadline_exceeded_ = 0;
  int64_t degraded_ = 0;
  int64_t shed_ = 0;
  int64_t inflight_ = 0;

  /// Destroyed after workers_ (construction order), but explicitly
  /// stopped FIRST in the destructor: its handlers read the members
  /// above, so no connection may be in flight once member destruction
  /// begins.
  std::unique_ptr<serving::HttpServer> http_;

  /// Fair mode only (null otherwise). The destructor calls Shutdown()
  /// and joins sched_workers_ before member destruction begins.
  std::unique_ptr<FairScheduler> sched_;
  /// Fair mode's dedicated worker threads (Options::num_workers of them);
  /// each runs SchedulerWorkerLoop() until the scheduler drains.
  std::vector<std::thread> sched_workers_;

  /// Last member: destroyed (and drained) first, so worker tasks never
  /// outlive the state above. Fair mode leaves it one idle thread and
  /// dispatches through sched_ instead.
  ThreadPool workers_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_SERVICE_H_
