#include "core/runtime/plan_analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/accuracy.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "core/operators/physical.h"

namespace unify::core {

namespace {

/// Hindsight impl audit: with the measured cardinalities in hand, is the
/// chosen implementation still the cost-model argmin among the
/// semantically valid candidates? Index-scan alternatives are skipped
/// unless chosen — their cost depends on an index_candidates argument the
/// optimizer only computes when it selects them.
bool HindsightOptimal(const PhysicalNode& node, const NodeExecution& actual,
                      const CostModel& cost_model,
                      OptimizeObjective objective) {
  double chosen_cost = -1;
  double best_cost = -1;
  for (PhysicalImpl alt :
       CandidateImpls(node.logical.op_name, node.logical.args)) {
    if (node.logical.requires_semantics && !ImplSemanticCapable(alt)) {
      continue;
    }
    if (alt == PhysicalImpl::kIndexScanFilter && alt != node.impl) {
      continue;
    }
    const double cost =
        objective == OptimizeObjective::kDollars
            ? cost_model.EstimateDollars(node.logical.op_name, alt,
                                         node.logical.args,
                                         actual.actual_in_card,
                                         actual.actual_out_card)
            : cost_model.EstimateSeconds(node.logical.op_name, alt,
                                         node.logical.args,
                                         actual.actual_in_card,
                                         actual.actual_out_card);
    if (alt == node.impl) chosen_cost = cost;
    if (best_cost < 0 || cost < best_cost) best_cost = cost;
  }
  // Impls outside the candidate list (custom operators) have no
  // alternative to compare against.
  if (chosen_cost < 0) return true;
  return chosen_cost <= best_cost * (1 + 1e-9);
}

}  // namespace

std::vector<PlanNodeAnalysis> BuildPlanAnalysis(
    const PhysicalPlan& plan, const PlanExecutor& executor,
    const CostModel& cost_model, OptimizeObjective objective,
    const std::vector<ReplanRecord>& replans) {
  auto& ledger = AccuracyLedger::Global();
  const auto& stats = executor.node_stats();
  const auto& actuals = executor.node_executions();
  // Which replan (1-based ordinal) re-lowered each node.
  std::vector<int> replanned_by(plan.nodes.size(), 0);
  for (size_t r = 0; r < replans.size(); ++r) {
    for (int u : replans[r].relowered_nodes) {
      if (u >= 0 && static_cast<size_t>(u) < replanned_by.size()) {
        replanned_by[u] = static_cast<int>(r) + 1;
      }
    }
  }
  // Render order and indentation depth, matching Explain().
  auto order = plan.dag.TopologicalOrder();
  std::vector<int> render;
  std::vector<int> depth(plan.nodes.size(), 0);
  if (order.ok()) {
    render = *order;
    for (int u : render) {
      for (int v : plan.dag.children(u)) {
        depth[v] = std::max(depth[v], depth[u] + 1);
      }
    }
  } else {
    render.resize(plan.nodes.size());
    for (size_t i = 0; i < render.size(); ++i) {
      render[i] = static_cast<int>(i);
    }
  }
  std::vector<PlanNodeAnalysis> analysis;
  analysis.reserve(render.size() + 1);
  for (int u : render) {
    const PhysicalNode& node = plan.nodes[u];
    const NodeExecution& actual = actuals[u];
    const OpStats& st = stats[u];
    PlanNodeAnalysis a;
    a.op_name = node.logical.op_name;
    a.impl = PhysicalImplName(node.impl);
    a.output_var = node.logical.output_var;
    a.depth = depth[u];
    a.executed = actual.executed;
    a.est_in_card = node.est_in_card;
    a.est_out_card = node.est_out_card;
    a.actual_in_card = actual.actual_in_card;
    a.actual_out_card = actual.actual_out_card;
    a.est_seconds = node.est_seconds;
    a.actual_seconds = st.cpu_seconds + st.llm_seconds;
    a.virt_start = actual.virt_start;
    a.virt_finish = actual.virt_finish;
    a.queue_wait_seconds = actual.queue_wait_seconds;
    a.est_dollars = node.est_dollars;
    a.actual_dollars = st.llm_dollars;
    a.llm_calls = st.llm_calls;
    a.est_partitions = node.est_partitions;
    a.partitions = actual.partitions;
    a.adjusted = actual.adjusted;
    a.retries = actual.retries;
    a.replanned_by = replanned_by[u];
    if (actual.executed) {
      a.card_qerror = QError(a.est_out_card, a.actual_out_card);
      ledger.RecordCardQError(a.card_qerror);
      ledger.RecordImplChoice(
          a.impl, HindsightOptimal(node, actual, cost_model, objective));
    }
    analysis.push_back(std::move(a));
  }
  // The Section V-D fallback generation answers the query outside the
  // plan; surface it as a trailing synthetic record so EXPLAIN ANALYZE
  // shows what actually ran.
  if (executor.fallback_execution().has_value()) {
    const NodeExecution& fb = *executor.fallback_execution();
    const OpStats& st = executor.fallback_stats();
    PlanNodeAnalysis a;
    a.op_name = "Generate";
    a.impl = PhysicalImplName(PhysicalImpl::kLlmGenerate);
    a.output_var = "(fallback)";
    a.executed = true;
    a.synthetic_fallback = true;
    a.adjusted = true;
    a.actual_in_card = fb.actual_in_card;
    a.actual_out_card = fb.actual_out_card;
    a.actual_seconds = st.cpu_seconds + st.llm_seconds;
    a.virt_start = fb.virt_start;
    a.virt_finish = fb.virt_finish;
    a.queue_wait_seconds = fb.queue_wait_seconds;
    a.actual_dollars = st.llm_dollars;
    a.llm_calls = st.llm_calls;
    analysis.push_back(std::move(a));
  }
  return analysis;
}

int AuditReplanOutcomes(const std::vector<ReplanRecord>& replans,
                        const PlanExecutor& executor,
                        OptimizeObjective objective, double base_seconds) {
  auto& ledger = AccuracyLedger::Global();
  const auto& stats = executor.node_stats();
  const auto& actuals = executor.node_executions();
  int improved_count = 0;
  for (const ReplanRecord& rec : replans) {
    if (!rec.adopted) continue;
    bool complete = !rec.suffix_nodes.empty();
    double suffix_dollars = rec.decision_dollars;
    double suffix_completion = 0;
    for (int u : rec.suffix_nodes) {
      if (u < 0 || static_cast<size_t>(u) >= actuals.size() ||
          !actuals[u].executed) {
        complete = false;
        break;
      }
      suffix_dollars += stats[u].llm_dollars;
      suffix_completion = std::max(suffix_completion,
                                   actuals[u].virt_finish + base_seconds);
    }
    // The predicted costs-to-go in the record are on the execution
    // pool's absolute clock for time, plain dollars otherwise; compare
    // the measured suffix against the predicted cost of keeping the old
    // plan. An aborted suffix never counts as an improvement.
    bool improved = false;
    if (complete) {
      improved = objective == OptimizeObjective::kDollars
                     ? suffix_dollars < rec.old_suffix_cost
                     : suffix_completion < rec.old_suffix_cost;
    }
    ledger.RecordReplanOutcome(improved);
    if (improved) ++improved_count;
  }
  return improved_count;
}

std::string QueryResult::explain_analyze() const {
  if (plan_analysis.empty()) return "";
  std::ostringstream os;
  os << "EXPLAIN ANALYZE (makespan est " << FormatDouble(
         predicted_exec_seconds, 1)
     << "s -> actual " << FormatDouble(exec_seconds, 1) << "s";
  if (exec_seconds > 0) {
    const double rel = (predicted_exec_seconds - exec_seconds) /
                       exec_seconds;
    char relbuf[32];
    std::snprintf(relbuf, sizeof(relbuf), "%+.1f%%", 100.0 * rel);
    os << " (" << relbuf << ")";
  }
  os << ", $ est " << FormatDouble(predicted_exec_dollars, 3)
     << " -> actual " << FormatDouble(exec_dollars, 3) << ")\n";
  // Replan boundaries: one line per mid-query re-optimization, before
  // the node rows its markers refer to (docs/replanning.md).
  for (size_t r = 0; r < replans.size(); ++r) {
    const ReplanRecord& rec = replans[r];
    os << "replan #" << (r + 1) << " @ t="
       << FormatDouble(rec.elapsed_seconds, 1) << "s: " << rec.trigger_var
       << " observed " << FormatDouble(rec.observed_card, 0) << " vs est "
       << FormatDouble(rec.estimated_card, 0) << " (q-err "
       << FormatDouble(rec.qerror, 2) << ") -> ";
    if (rec.adopted) {
      os << "adopted (" << rec.nodes_rechosen
         << " nodes re-lowered, suffix est "
         << FormatDouble(rec.old_suffix_cost, 3) << " -> "
         << FormatDouble(rec.new_suffix_cost, 3) << ")";
    } else {
      os << "kept plan";
    }
    os << "\n";
  }
  for (const PlanNodeAnalysis& a : plan_analysis) {
    for (int i = 0; i < a.depth; ++i) os << "  ";
    os << "+- " << a.op_name << " <" << a.impl << "> -> " << a.output_var;
    if (!a.executed) {
      os << "  [not executed]\n";
      continue;
    }
    if (a.synthetic_fallback) {
      os << "  [fallback] actual " << FormatDouble(a.actual_in_card, 0)
         << "->" << FormatDouble(a.actual_out_card, 0) << " | "
         << FormatDouble(a.actual_seconds, 2) << "s | $ "
         << FormatDouble(a.actual_dollars, 3) << "\n";
      continue;
    }
    os << "  card est " << FormatDouble(a.est_in_card, 0) << "->"
       << FormatDouble(a.est_out_card, 0) << " actual "
       << FormatDouble(a.actual_in_card, 0) << "->"
       << FormatDouble(a.actual_out_card, 0) << " (q-err "
       << FormatDouble(a.card_qerror, 2) << ")";
    os << " | est " << FormatDouble(a.est_seconds, 2) << "s actual "
       << FormatDouble(a.actual_seconds, 2) << "s";
    if (a.queue_wait_seconds > 0.005) {
      os << " (+" << FormatDouble(a.queue_wait_seconds, 2) << "s wait)";
    }
    os << " | $ est " << FormatDouble(a.est_dollars, 3) << " actual "
       << FormatDouble(a.actual_dollars, 3);
    if (a.partitions > 1 || a.est_partitions > 1) {
      os << " | x" << a.partitions << " morsels (est x" << a.est_partitions
         << ")";
    }
    if (a.adjusted) {
      os << " | adjusted (" << a.retries << " retries)";
    }
    if (a.replanned_by > 0) {
      os << " | replanned (#" << a.replanned_by << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace unify::core
