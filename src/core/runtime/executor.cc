#include "core/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <mutex>
#include <optional>

#include "common/metrics.h"
#include "common/stats.h"
#include "common/telemetry_names.h"
#include "core/operators/custom_ops.h"
#include "core/operators/physical_operator.h"
#include "exec/dag_runner.h"
#include "exec/schedule.h"

namespace unify::core {

void PlanExecutor::Begin(const PhysicalPlan& plan, ExecutionState& state,
                         Trace* trace, SpanId parent) {
  state.plan = plan;
  state.trace = trace;
  state.exec_span =
      std::make_unique<ScopedSpan>(trace, telemetry::kSpanExecute, parent);
  node_stats_.assign(plan.nodes.size(), OpStats{});
  node_executions_.assign(plan.nodes.size(), NodeExecution{});
  fallback_execution_.reset();
  fallback_stats_ = OpStats{};
  state.node_spans.assign(plan.nodes.size(), kNoSpan);
  state.node_partitions.assign(plan.nodes.size(), {});
  state.done.assign(plan.nodes.size(), false);
  state.replan_checked.assign(plan.nodes.size(), false);
  state.shared = options_.shared_pool != nullptr;
  state.base = state.shared ? options_.start_seconds : 0.0;
  if (!state.shared) {
    state.local_pool = std::make_unique<exec::VirtualLlmPool>(
        std::max(1, options_.num_servers));
  }
  state.pool = state.shared ? options_.shared_pool : state.local_pool.get();
  state.sched_start.assign(plan.nodes.size(), state.base);
  state.sched_finish.assign(plan.nodes.size(), state.base);
  state.makespan = state.base;
  state.seq_clock = state.base;
  state.resume_floor = state.base;
}

Status PlanExecutor::RunNode(ExecutionState& state, int u) {
  const PhysicalNode& node = state.plan.nodes[u];
  Trace* trace = state.trace;
  // DAG workers don't inherit the query's thread-local metrics sink or
  // retry budget, so install both for the duration of the node.
  std::optional<MetricsRegistry::ScopedSink> sink_scope;
  if (options_.metrics_sink != nullptr) {
    sink_scope.emplace(options_.metrics_sink);
  }
  std::optional<llm::RetryBudget::ScopedUse> budget_scope;
  if (options_.retry_budget != nullptr) {
    budget_scope.emplace(options_.retry_budget);
  }
  std::optional<llm::SharedCacheLlmClient::ScopedUse> cache_scope;
  if (options_.use_llm_cache.has_value()) {
    cache_scope.emplace(*options_.use_llm_cache);
  }
  // Slot u is written only by the worker running node u.
  NodeExecution& record = node_executions_[u];
  ScopedSpan node_span(trace, telemetry::kSpanExecNode,
                       state.exec_span->id());
  state.node_spans[u] = node_span.id();
  MetricAddCounter(telemetry::kMetricExecNodes);
  if (trace != nullptr) {
    node_span.AddAttr("op", node.logical.op_name);
    node_span.AddAttr("impl", PhysicalImplName(node.impl));
    node_span.AddAttr("output_var", node.logical.output_var);
  }
  std::vector<Value> inputs;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    for (const auto& in : node.logical.input_vars) {
      if (in.empty()) continue;
      auto it = state.vars.find(in);
      if (it == state.vars.end()) {
        return Status::FailedPrecondition("missing input variable " + in +
                                          " for " + node.logical.op_name);
      }
      inputs.push_back(it->second);
    }
  }
  for (const Value& in : inputs) {
    record.actual_in_card =
        std::max(record.actual_in_card,
                 static_cast<double>(in.Cardinality()));
  }

  ExecContext ctx = ctx_;  // per-node copy (cheap; pointers only)

  // Runs one partitioned execution: every morsel is an independent LLM
  // stream (concurrent on the wall-clock pool when threads are
  // configured), merged order-stably into the node's output. Partitions
  // are whole LLM batches, so the calls issued — and therefore the
  // answer and the summed OpStats — are byte-identical to sequential.
  auto run_partitioned =
      [&](const PartitionedExecution& pe) -> StatusOr<OpOutput> {
    const size_t num_parts = pe.partitions.size();
    MetricAddCounter(telemetry::kMetricExecPartitions,
                       static_cast<double>(num_parts));
    node_span.AddAttr("partitions", static_cast<int64_t>(num_parts));
    std::vector<StatusOr<OpOutput>> parts(
        num_parts, Status::Internal("partition not run"));
    auto run_one = [&](size_t i) {
      // Morsel workers need the query's sink and budget too (fresh pool
      // threads).
      std::optional<MetricsRegistry::ScopedSink> part_sink;
      if (options_.metrics_sink != nullptr) {
        part_sink.emplace(options_.metrics_sink);
      }
      std::optional<llm::RetryBudget::ScopedUse> part_budget;
      if (options_.retry_budget != nullptr) {
        part_budget.emplace(options_.retry_budget);
      }
      std::optional<llm::SharedCacheLlmClient::ScopedUse> part_cache;
      if (options_.use_llm_cache.has_value()) {
        part_cache.emplace(*options_.use_llm_cache);
      }
      // Slot i is written only by the worker running morsel i.
      ScopedSpan part_span(trace, telemetry::kSpanExecPartition,
                           node_span.id());
      if (trace != nullptr) {
        part_span.AddAttr("partition", static_cast<int64_t>(i));
        part_span.AddAttr("docs",
                          static_cast<int64_t>(pe.partitions[i].num_docs));
      }
      parts[i] = pe.partitions[i].run();
      if (trace != nullptr) {
        if (parts[i].ok()) {
          part_span.AddAttr("llm_seconds", parts[i]->stats.llm_seconds);
          part_span.AddAttr("llm_calls", parts[i]->stats.llm_calls);
        } else {
          part_span.AddAttr("status", parts[i].status().ToString());
        }
      }
    };
    if (options_.threads > 1) {
      ThreadPool part_pool(std::min(static_cast<size_t>(options_.threads),
                                    num_parts));
      for (size_t i = 0; i < num_parts; ++i) {
        part_pool.Schedule([&run_one, i] { run_one(i); });
      }
      part_pool.Wait();
    } else {
      for (size_t i = 0; i < num_parts; ++i) run_one(i);
    }
    OpOutput out;
    out.stats = pe.base_stats;
    std::vector<double> part_llm;
    part_llm.reserve(num_parts);
    std::vector<OpOutput> outputs;
    outputs.reserve(num_parts);
    for (StatusOr<OpOutput>& part : parts) {
      if (!part.ok()) return part.status();
      out.stats.Add(part->stats);
      part_llm.push_back(part->stats.llm_seconds);
      outputs.push_back(std::move(*part));
    }
    const auto merge_start = std::chrono::steady_clock::now();
    UNIFY_ASSIGN_OR_RETURN(out.value, pe.merge(outputs));
    const double merge_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_start)
            .count();
    MetricObserve(telemetry::kMetricExecPartitionMerge, merge_seconds);
    node_span.AddAttr("merge_seconds", merge_seconds);
    state.node_partitions[u] = std::move(part_llm);
    return out;
  };

  // Try morsel-driven execution first; anything unpartitionable (CPU
  // impls, grouped inputs, custom ops, single-batch inputs) falls back
  // to the whole-input path with identical semantics.
  std::optional<StatusOr<OpOutput>> partitioned_output;
  if (options_.max_intra_op_parallelism > 1 && ctx.llm != nullptr &&
      (ctx.custom_ops == nullptr ||
       ctx.custom_ops->Find(node.logical.op_name) == nullptr)) {
    if (const PhysicalOperator* family =
            FindPhysicalOperator(node.logical.op_name);
        family != nullptr) {
      auto pe = family->Partition(node.logical.op_name, node.impl,
                                  node.logical.args, inputs, ctx,
                                  options_.max_intra_op_parallelism);
      if (pe.ok() && pe->has_value()) {
        partitioned_output = run_partitioned(**pe);
      }
    }
  }
  auto output = partitioned_output.has_value()
                    ? std::move(*partitioned_output)
                    : ExecuteOp(node.logical.op_name, node.impl,
                                node.logical.args, inputs, ctx);

  // Plan adjustment (Section III-C): when an operator fails to produce
  // the expected result, retry with alternative physical
  // implementations instead of restarting the whole plan.
  if (!output.ok()) {
    {
      std::lock_guard<std::mutex> lock(state.mu);
      state.adjusted = true;
    }
    node_span.AddAttr("adjusted", true);
    record.adjusted = true;
    MetricAddCounter(telemetry::kMetricExecAdjustments);
    for (int attempt = 0;
         attempt < options_.max_adjustments && !output.ok(); ++attempt) {
      bool retried = false;
      for (PhysicalImpl alt :
           CandidateImpls(node.logical.op_name, node.logical.args)) {
        if (alt == node.impl) continue;
        if (node.logical.requires_semantics && !ImplSemanticCapable(alt)) {
          continue;
        }
        ++record.retries;
        auto retry = ExecuteOp(node.logical.op_name, alt,
                               node.logical.args, inputs, ctx);
        if (retry.ok()) {
          output = std::move(retry);
          retried = true;
          break;
        }
      }
      if (!retried) break;
    }
  }

  std::lock_guard<std::mutex> lock(state.mu);
  if (!output.ok()) {
    node_span.AddAttr("status", output.status().ToString());
    return output.status();
  }
  if (trace != nullptr) {
    node_span.AddAttr("llm_seconds", output->stats.llm_seconds);
    node_span.AddAttr("llm_calls", output->stats.llm_calls);
    node_span.AddAttr("cpu_seconds", output->stats.cpu_seconds);
    node_span.AddAttr("dollars", output->stats.llm_dollars);
  }
  node_stats_[u] = output->stats;
  record.executed = true;
  record.actual_out_card = static_cast<double>(output->value.Cardinality());
  record.partitions = state.node_partitions[u].size() > 1
                          ? static_cast<int>(state.node_partitions[u].size())
                          : 1;
  state.done[u] = true;
  if (!node.logical.output_var.empty()) {
    state.vars[node.logical.output_var] = output->value;
  }
  return Status::OK();
}

double PlanExecutor::ScheduleNode(ExecutionState& state, int u,
                                  double ready) {
  const OpStats& stats = node_stats_[u];
  const std::vector<double>& parts = state.node_partitions[u];
  double finish;
  if (options_.max_intra_op_parallelism > 1 && parts.size() > 1) {
    finish = state.pool->ScheduleParallelStream(
        ready + stats.cpu_seconds, parts, options_.max_intra_op_parallelism);
  } else {
    finish = state.pool->ScheduleStream(ready + stats.cpu_seconds,
                                        stats.llm_seconds);
  }
  state.sched_start[u] = ready;
  state.sched_finish[u] = finish;
  state.makespan = std::max(state.makespan, finish);
  return finish;
}

void PlanExecutor::AdvanceFrontier(ExecutionState& state, int u) {
  for (int v : state.plan.dag.children(u)) {
    if (--state.pending_parents[v] == 0) {
      double ready = state.base;
      for (int p : state.plan.dag.parents(v)) {
        ready = std::max(ready, state.sched_finish[p]);
      }
      state.frontier.push_back({ready, v});
    }
  }
}

std::optional<ReplanRequest> PlanExecutor::Run(ExecutionState& state) {
  if (!state.run_status.ok()) return std::nullopt;
  state.incremental = true;
  state.sched_ok = true;
  const bool sequential = !options_.parallel;
  const size_t n = state.plan.nodes.size();
  if (!state.engine_started) {
    state.engine_started = true;
    if (sequential) {
      // The whole topological order, walked front to back.
      auto order = state.plan.dag.TopologicalOrder();
      if (!order.ok()) {
        state.run_status = order.status();
        return std::nullopt;
      }
      for (int u : *order) state.frontier.push_back({state.base, u});
    } else {
      state.pending_parents.assign(n, 0);
      for (size_t u = 0; u < n; ++u) {
        state.pending_parents[u] =
            static_cast<int>(state.plan.dag.parents(static_cast<int>(u))
                                 .size());
        if (state.pending_parents[u] == 0) {
          state.frontier.push_back({state.base, static_cast<int>(u)});
        }
      }
    }
  }
  while (true) {
    // Pick the next node the batch list scheduler would dispatch:
    // sequential mode walks the topological order; parallel mode takes
    // the earliest-ready frontier entry (ties to the lower node index).
    int u = -1;
    double ready = 0;
    if (sequential) {
      if (state.frontier_pos < state.frontier.size()) {
        u = state.frontier[state.frontier_pos].second;
        ++state.frontier_pos;
        ready = std::max(state.seq_clock, state.resume_floor);
      }
    } else {
      size_t best = state.frontier.size();
      for (size_t i = 0; i < state.frontier.size(); ++i) {
        if (best == state.frontier.size() ||
            state.frontier[i].first < state.frontier[best].first ||
            (state.frontier[i].first == state.frontier[best].first &&
             state.frontier[i].second < state.frontier[best].second)) {
          best = i;
        }
      }
      if (best < state.frontier.size()) {
        u = state.frontier[best].second;
        ready = std::max(state.frontier[best].first, state.resume_floor);
        state.frontier.erase(state.frontier.begin() +
                             static_cast<long>(best));
      }
    }
    if (u < 0) {
      size_t executed = 0;
      for (bool d : state.done) executed += d ? 1 : 0;
      if (executed != n) {
        state.run_status =
            Status::FailedPrecondition("cycle detected in plan DAG");
      }
      return std::nullopt;
    }

    Status st = RunNode(state, u);
    if (!st.ok()) {
      state.run_status = st;
      return std::nullopt;
    }
    const double finish = ScheduleNode(state, u, ready);
    if (sequential) {
      state.seq_clock = finish;
    } else {
      AdvanceFrontier(state, u);
    }

    // Materialization-point trigger: pause when the node's observed
    // cardinality diverges from the optimizer's estimate and un-executed
    // nodes remain that a replan could still improve.
    if (options_.reoptimize && !state.replan_checked[u]) {
      state.replan_checked[u] = true;
      const PhysicalNode& node = state.plan.nodes[u];
      size_t remaining = 0;
      for (bool d : state.done) remaining += d ? 0 : 1;
      if (remaining > 0 &&
          state.replan_yields < options_.max_reoptimizations &&
          !node.logical.output_var.empty()) {
        const double qerr = QError(node.est_out_card,
                                   node_executions_[u].actual_out_card);
        if (qerr >= options_.reoptimize_qerror_threshold) {
          ++state.replan_yields;
          ReplanRequest req;
          req.node = u;
          req.output_var = node.logical.output_var;
          req.observed_card = node_executions_[u].actual_out_card;
          req.estimated_card = node.est_out_card;
          req.qerror = qerr;
          req.elapsed_seconds = finish;
          req.executed = state.done;
          for (size_t i = 0; i < n; ++i) {
            if (!state.done[i]) continue;
            const std::string& var =
                state.plan.nodes[i].logical.output_var;
            if (!var.empty()) {
              req.observed_cards[var] =
                  node_executions_[i].actual_out_card;
            }
          }
          return req;
        }
      }
    }
  }
}

void PlanExecutor::ApplyReplan(ExecutionState& state, ReplanRecord record,
                               const PhysicalPlan* new_plan) {
  // The decision call is charged to the query whether or not the suffix
  // is adopted, and the pause is a barrier: nothing resumes before the
  // planner's verdict lands on the virtual clock.
  state.replan_seconds += record.decision_seconds;
  state.replan_dollars += record.decision_dollars;
  state.replan_calls += 1;
  state.resume_floor =
      std::max(state.resume_floor,
               record.elapsed_seconds + record.decision_seconds);
  state.makespan = std::max(state.makespan, state.resume_floor);
  record.adopted = new_plan != nullptr;
  for (size_t i = 0; i < state.plan.nodes.size(); ++i) {
    if (!state.done[i]) record.suffix_nodes.push_back(static_cast<int>(i));
  }
  if (new_plan != nullptr) {
    for (int i : record.suffix_nodes) {
      const PhysicalNode& before = state.plan.nodes[i];
      const PhysicalNode& after = new_plan->nodes[i];
      if (before.impl != after.impl ||
          before.logical.args != after.logical.args) {
        record.relowered_nodes.push_back(i);
      }
    }
    state.plan = *new_plan;
  }
  ScopedSpan replan_span(state.trace, telemetry::kSpanExecReplan,
                         state.exec_span->id());
  if (state.trace != nullptr) {
    replan_span.AddAttr("trigger_node", static_cast<int64_t>(
                                            record.trigger_node));
    replan_span.AddAttr("trigger_var", record.trigger_var);
    replan_span.AddAttr("qerror", record.qerror);
    replan_span.AddAttr("adopted", record.adopted);
    replan_span.AddAttr("nodes_rechosen",
                        static_cast<int64_t>(record.nodes_rechosen));
    replan_span.AddAttr("decision_seconds", record.decision_seconds);
    replan_span.AddAttr("old_suffix_cost", record.old_suffix_cost);
    replan_span.AddAttr("new_suffix_cost", record.new_suffix_cost);
  }
  state.replans.push_back(std::move(record));
}

ExecutionResult PlanExecutor::Finish(ExecutionState& state) {
  ExecutionResult result;
  ScopedSpan& exec_span = *state.exec_span;
  Trace* trace = state.trace;
  for (size_t i = 0; i < node_stats_.size(); ++i) {
    const OpStats& stats = node_stats_[i];
    result.llm_seconds_total += stats.llm_seconds;
    result.llm_dollars_total += stats.llm_dollars;
    result.llm_calls += stats.llm_calls;
  }
  // Replan decision calls are execution-side spend: their virtual time is
  // already modeled by the resume barrier, their dollars/calls land here.
  result.llm_seconds_total += state.replan_seconds;
  result.llm_dollars_total += state.replan_dollars;
  result.llm_calls += state.replan_calls;

  if (state.sched_ok) {
    // Report times relative to the query's own ready time, so standalone
    // and served queries read the same way; contention shows up as a
    // longer makespan and per-node queue waits.
    result.virtual_seconds = state.makespan - state.base;
    // Annotate each node span with its virtual interval on the server
    // pool, plus the time it spent waiting for a free server.
    for (size_t i = 0; i < state.plan.nodes.size(); ++i) {
      const double busy =
          node_stats_[i].cpu_seconds + node_stats_[i].llm_seconds;
      const double queue_wait = std::max(
          0.0, state.sched_finish[i] - state.sched_start[i] - busy);
      MetricObserve(telemetry::kMetricExecQueueWait, queue_wait);
      node_executions_[i].virt_start = state.sched_start[i] - state.base;
      node_executions_[i].virt_finish = state.sched_finish[i] - state.base;
      node_executions_[i].queue_wait_seconds = queue_wait;
      if (trace != nullptr && state.node_spans[i] != kNoSpan) {
        trace->SetVirtualInterval(state.node_spans[i],
                                  state.sched_start[i] - state.base,
                                  state.sched_finish[i] - state.base);
        trace->AddAttr(state.node_spans[i], "queue_wait_seconds",
                       queue_wait);
      }
    }
    // Fraction of the pool's capacity the plan actually kept busy.
    if (result.virtual_seconds > 0) {
      const double capacity = static_cast<double>(
                                  state.pool->num_servers()) *
                              result.virtual_seconds;
      const double occupancy = result.llm_seconds_total / capacity;
      MetricSetGauge(telemetry::kMetricExecPoolOccupancy, occupancy);
      exec_span.AddAttr("pool_occupancy", occupancy);
    }
    exec_span.SetVirtualInterval(0, result.virtual_seconds);
    // Execution timeline for observability.
    std::string timeline;
    char line[256];
    for (size_t i = 0; i < state.plan.nodes.size(); ++i) {
      std::snprintf(line, sizeof(line),
                    "t=%8.2fs..%8.2fs  %-10s <%s> -> %s  (llm %.2fs, %lld "
                    "calls)\n",
                    state.sched_start[i] - state.base,
                    state.sched_finish[i] - state.base,
                    state.plan.nodes[i].logical.op_name.c_str(),
                    PhysicalImplName(state.plan.nodes[i].impl),
                    state.plan.nodes[i].logical.output_var.c_str(),
                    node_stats_[i].llm_seconds,
                    static_cast<long long>(node_stats_[i].llm_calls));
      timeline += line;
    }
    for (size_t r = 0; r < state.replans.size(); ++r) {
      const ReplanRecord& rec = state.replans[r];
      std::snprintf(line, sizeof(line),
                    "t=%8.2fs  -- replan #%zu after %s: observed %.0f vs "
                    "est %.0f (q-err %.1f) -> %s\n",
                    rec.elapsed_seconds - state.base, r + 1,
                    rec.trigger_var.c_str(), rec.observed_card,
                    rec.estimated_card, rec.qerror,
                    rec.adopted ? "suffix re-lowered" : "kept plan");
      timeline += line;
    }
    result.timeline = std::move(timeline);
  }

  result.adjusted = state.adjusted;
  auto finalize = [&]() {
    if (trace == nullptr) return;
    exec_span.AddAttr("virtual_seconds", result.virtual_seconds);
    exec_span.AddAttr("llm_seconds", result.llm_seconds_total);
    exec_span.AddAttr("llm_calls", result.llm_calls);
    exec_span.AddAttr("dollars", result.llm_dollars_total);
    exec_span.AddAttr("adjusted", result.adjusted);
    if (!result.status.ok()) {
      exec_span.AddAttr("status", result.status.ToString());
    }
  };
  if (!state.run_status.ok()) {
    // Plan adjustment, stage 2 (Section III-C): an operator failed with
    // every implementation (e.g. a zero-denominator ratio, an empty
    // aggregate). Instead of restarting from scratch, replan the query
    // through the Section V-D fallback strategies.
    if (ctx_.llm != nullptr && !state.plan.query_text.empty() &&
        options_.max_adjustments > 0) {
      ScopedSpan fallback_span(trace, telemetry::kSpanExecFallback,
                               exec_span.id());
      fallback_span.AddAttr("failed_status", state.run_status.ToString());
      llm::LlmCall choose;
      choose.type = llm::PromptType::kChooseFallbackStrategy;
      choose.tier = llm::ModelTier::kPlanner;
      choose.fields["query"] = state.plan.query_text;
      llm::LlmResult strategy = ctx_.llm->Call(choose);
      result.llm_seconds_total += strategy.seconds;
      result.llm_dollars_total += strategy.dollars;
      result.llm_calls += 1;
      // Status contract: a failed strategy choice must not be mistaken for
      // a completion. Fall back to the default RAG strategy explicitly
      // (the call's time/dollars are already charged above).
      const std::string chosen =
          strategy.status.ok() ? strategy.Get("strategy", "rag") : "rag";
      if (!strategy.status.ok()) {
        fallback_span.AddAttr("choose_status", strategy.status.ToString());
      }

      OpArgs args{{"query", state.plan.query_text},
                  {"strategy", chosen},
                  {"retrieve_k", "100"}};
      fallback_span.AddAttr("strategy", chosen);
      DocList all;
      all.reserve(ctx_.corpus->size());
      for (uint64_t id = 0; id < ctx_.corpus->size(); ++id) {
        all.push_back(id);
      }
      ExecContext ctx = ctx_;
      auto fallback = ExecuteOp("Generate", PhysicalImpl::kLlmGenerate,
                                args, {Value::Docs(std::move(all))}, ctx);
      if (fallback.ok()) {
        result.llm_seconds_total += fallback->stats.llm_seconds;
        result.llm_dollars_total += fallback->stats.llm_dollars;
        result.llm_calls += fallback->stats.llm_calls;
        // The fallback generation is one more stream on the server pool.
        const double fb_ready = state.base + result.virtual_seconds +
                                fallback->stats.cpu_seconds;
        result.virtual_seconds =
            state.pool->ScheduleStream(fb_ready,
                                       fallback->stats.llm_seconds) -
            state.base;
        // A synthetic execution record for the fallback generation — it
        // has no plan node, but EXPLAIN ANALYZE should still show what
        // actually produced the answer (docs/replanning.md).
        fallback_stats_ = fallback->stats;
        fallback_stats_.llm_seconds += strategy.seconds;
        fallback_stats_.llm_dollars += strategy.dollars;
        fallback_stats_.llm_calls += 1;
        NodeExecution fb;
        fb.executed = true;
        fb.adjusted = true;
        fb.actual_in_card = static_cast<double>(ctx_.corpus->size());
        fb.actual_out_card =
            static_cast<double>(fallback->value.Cardinality());
        fb.virt_start = fb_ready - state.base;
        fb.virt_finish = result.virtual_seconds;
        fb.queue_wait_seconds =
            std::max(0.0, fb.virt_finish - fb.virt_start -
                              fallback->stats.llm_seconds);
        fallback_execution_ = fb;
        result.answer = fallback->value.ToAnswer();
        result.adjusted = true;
        finalize();
        return result;
      }
    }
    // Graceful degradation, the last line of defense: a *transient* LLM
    // failure that survived retries, plan adjustment AND the fallback
    // replan becomes a degraded (partial/empty) answer instead of a
    // failed query, when the caller opted in.
    if (options_.graceful_degradation &&
        llm::IsTransientLlmFailure(state.run_status)) {
      result.degraded = true;
      result.degraded_detail =
          "graceful degradation absorbed: " + state.run_status.ToString();
      result.answer = corpus::Answer::None();
      exec_span.AddAttr("degraded", true);
      exec_span.AddAttr("degraded_detail", result.degraded_detail);
      finalize();
      return result;
    }
    result.status = state.run_status;
    result.answer = corpus::Answer::None();
    finalize();
    return result;
  }
  auto it = state.vars.find(state.plan.answer_var);
  if (it == state.vars.end()) {
    result.status = Status::NotFound("answer variable " +
                                     state.plan.answer_var + " not bound");
    result.answer = corpus::Answer::None();
    finalize();
    return result;
  }
  result.answer = it->second.ToAnswer();
  finalize();
  return result;
}

ExecutionResult PlanExecutor::Execute(const PhysicalPlan& plan, Trace* trace,
                                      SpanId parent) {
  ExecutionState state;
  Begin(plan, state, trace, parent);

  auto run_node = [&](int u) -> Status { return RunNode(state, u); };
  if (options_.threads > 0 && options_.parallel) {
    ThreadPool pool(static_cast<size_t>(options_.threads));
    state.run_status = exec::RunDag(state.plan.dag, &pool, run_node);
  } else {
    state.run_status = exec::RunDag(state.plan.dag, nullptr, run_node);
  }

  // Virtual-time accounting from the measured per-node streams: one batch
  // schedule after the whole DAG ran (the historical single-shot model;
  // the adaptive engine schedules incrementally instead).
  std::vector<exec::NodeCost> costs;
  costs.reserve(state.plan.nodes.size());
  for (size_t i = 0; i < node_stats_.size(); ++i) {
    const OpStats& stats = node_stats_[i];
    exec::NodeCost c;
    c.cpu_seconds = stats.cpu_seconds;
    c.llm_seconds = stats.llm_seconds;
    // Nodes that split carry their measured per-morsel streams so the
    // virtual schedule fans them across servers.
    if (state.node_partitions[i].size() > 1) {
      c.llm_partitions = state.node_partitions[i];
      c.max_parallelism = options_.max_intra_op_parallelism;
    }
    costs.push_back(c);
  }
  // With a shared pool (serving session) the streams contend with other
  // in-flight queries and the timeline starts at the query's virtual
  // ready time; a private pool reproduces the standalone model.
  auto sched = exec::ScheduleDag(state.plan.dag, costs, state.pool,
                                 /*sequential=*/!options_.parallel,
                                 state.base);
  if (sched.ok()) {
    state.sched_ok = true;
    state.sched_start = std::move(sched->start);
    state.sched_finish = std::move(sched->finish);
    state.makespan = sched->makespan;
  }
  return Finish(state);
}

}  // namespace unify::core
