#include "core/runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include <mutex>
#include <optional>

#include "common/metrics.h"
#include "common/telemetry_names.h"
#include "core/operators/custom_ops.h"
#include "core/operators/physical_operator.h"
#include "exec/dag_runner.h"
#include "exec/schedule.h"

namespace unify::core {

ExecutionResult PlanExecutor::Execute(const PhysicalPlan& plan, Trace* trace,
                                      SpanId parent) {
  ScopedSpan exec_span(trace, telemetry::kSpanExecute, parent);
  ExecutionResult result;
  node_stats_.assign(plan.nodes.size(), OpStats{});
  node_executions_.assign(plan.nodes.size(), NodeExecution{});

  std::mutex mu;
  std::map<std::string, Value> vars;
  bool adjusted = false;
  // Span of each DAG node, for post-hoc virtual-interval annotation. Slot
  // u is written only by the worker running node u.
  std::vector<SpanId> node_spans(plan.nodes.size(), kNoSpan);
  // Per-partition LLM stream seconds of nodes that actually split (empty =
  // node ran as one sequential stream). Same single-writer discipline.
  std::vector<std::vector<double>> node_partitions(plan.nodes.size());

  auto run_node = [&](int u) -> Status {
    const PhysicalNode& node = plan.nodes[u];
    // DAG workers don't inherit the query's thread-local metrics sink or
    // retry budget, so install both for the duration of the node.
    std::optional<MetricsRegistry::ScopedSink> sink_scope;
    if (options_.metrics_sink != nullptr) {
      sink_scope.emplace(options_.metrics_sink);
    }
    std::optional<llm::RetryBudget::ScopedUse> budget_scope;
    if (options_.retry_budget != nullptr) {
      budget_scope.emplace(options_.retry_budget);
    }
    std::optional<llm::SharedCacheLlmClient::ScopedUse> cache_scope;
    if (options_.use_llm_cache.has_value()) {
      cache_scope.emplace(*options_.use_llm_cache);
    }
    // Slot u is written only by the worker running node u.
    NodeExecution& record = node_executions_[u];
    ScopedSpan node_span(trace, telemetry::kSpanExecNode, exec_span.id());
    node_spans[u] = node_span.id();
    MetricAddCounter(telemetry::kMetricExecNodes);
    if (trace != nullptr) {
      node_span.AddAttr("op", node.logical.op_name);
      node_span.AddAttr("impl", PhysicalImplName(node.impl));
      node_span.AddAttr("output_var", node.logical.output_var);
    }
    std::vector<Value> inputs;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (const auto& in : node.logical.input_vars) {
        if (in.empty()) continue;
        auto it = vars.find(in);
        if (it == vars.end()) {
          return Status::FailedPrecondition("missing input variable " + in +
                                            " for " + node.logical.op_name);
        }
        inputs.push_back(it->second);
      }
    }
    for (const Value& in : inputs) {
      record.actual_in_card =
          std::max(record.actual_in_card,
                   static_cast<double>(in.Cardinality()));
    }

    ExecContext ctx = ctx_;  // per-node copy (cheap; pointers only)

    // Runs one partitioned execution: every morsel is an independent LLM
    // stream (concurrent on the wall-clock pool when threads are
    // configured), merged order-stably into the node's output. Partitions
    // are whole LLM batches, so the calls issued — and therefore the
    // answer and the summed OpStats — are byte-identical to sequential.
    auto run_partitioned =
        [&](const PartitionedExecution& pe) -> StatusOr<OpOutput> {
      const size_t num_parts = pe.partitions.size();
      MetricAddCounter(telemetry::kMetricExecPartitions,
                         static_cast<double>(num_parts));
      node_span.AddAttr("partitions", static_cast<int64_t>(num_parts));
      std::vector<StatusOr<OpOutput>> parts(
          num_parts, Status::Internal("partition not run"));
      auto run_one = [&](size_t i) {
        // Morsel workers need the query's sink and budget too (fresh pool
        // threads).
        std::optional<MetricsRegistry::ScopedSink> part_sink;
        if (options_.metrics_sink != nullptr) {
          part_sink.emplace(options_.metrics_sink);
        }
        std::optional<llm::RetryBudget::ScopedUse> part_budget;
        if (options_.retry_budget != nullptr) {
          part_budget.emplace(options_.retry_budget);
        }
        std::optional<llm::SharedCacheLlmClient::ScopedUse> part_cache;
        if (options_.use_llm_cache.has_value()) {
          part_cache.emplace(*options_.use_llm_cache);
        }
        // Slot i is written only by the worker running morsel i.
        ScopedSpan part_span(trace, telemetry::kSpanExecPartition,
                             node_span.id());
        if (trace != nullptr) {
          part_span.AddAttr("partition", static_cast<int64_t>(i));
          part_span.AddAttr("docs",
                            static_cast<int64_t>(pe.partitions[i].num_docs));
        }
        parts[i] = pe.partitions[i].run();
        if (trace != nullptr) {
          if (parts[i].ok()) {
            part_span.AddAttr("llm_seconds", parts[i]->stats.llm_seconds);
            part_span.AddAttr("llm_calls", parts[i]->stats.llm_calls);
          } else {
            part_span.AddAttr("status", parts[i].status().ToString());
          }
        }
      };
      if (options_.threads > 1) {
        ThreadPool part_pool(std::min(static_cast<size_t>(options_.threads),
                                      num_parts));
        for (size_t i = 0; i < num_parts; ++i) {
          part_pool.Schedule([&run_one, i] { run_one(i); });
        }
        part_pool.Wait();
      } else {
        for (size_t i = 0; i < num_parts; ++i) run_one(i);
      }
      OpOutput out;
      out.stats = pe.base_stats;
      std::vector<double> part_llm;
      part_llm.reserve(num_parts);
      std::vector<OpOutput> outputs;
      outputs.reserve(num_parts);
      for (StatusOr<OpOutput>& part : parts) {
        if (!part.ok()) return part.status();
        out.stats.Add(part->stats);
        part_llm.push_back(part->stats.llm_seconds);
        outputs.push_back(std::move(*part));
      }
      const auto merge_start = std::chrono::steady_clock::now();
      UNIFY_ASSIGN_OR_RETURN(out.value, pe.merge(outputs));
      const double merge_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        merge_start)
              .count();
      MetricObserve(telemetry::kMetricExecPartitionMerge, merge_seconds);
      node_span.AddAttr("merge_seconds", merge_seconds);
      node_partitions[u] = std::move(part_llm);
      return out;
    };

    // Try morsel-driven execution first; anything unpartitionable (CPU
    // impls, grouped inputs, custom ops, single-batch inputs) falls back
    // to the whole-input path with identical semantics.
    std::optional<StatusOr<OpOutput>> partitioned_output;
    if (options_.max_intra_op_parallelism > 1 && ctx.llm != nullptr &&
        (ctx.custom_ops == nullptr ||
         ctx.custom_ops->Find(node.logical.op_name) == nullptr)) {
      if (const PhysicalOperator* family =
              FindPhysicalOperator(node.logical.op_name);
          family != nullptr) {
        auto pe = family->Partition(node.logical.op_name, node.impl,
                                    node.logical.args, inputs, ctx,
                                    options_.max_intra_op_parallelism);
        if (pe.ok() && pe->has_value()) {
          partitioned_output = run_partitioned(**pe);
        }
      }
    }
    auto output = partitioned_output.has_value()
                      ? std::move(*partitioned_output)
                      : ExecuteOp(node.logical.op_name, node.impl,
                                  node.logical.args, inputs, ctx);

    // Plan adjustment (Section III-C): when an operator fails to produce
    // the expected result, retry with alternative physical
    // implementations instead of restarting the whole plan.
    if (!output.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu);
        adjusted = true;
      }
      node_span.AddAttr("adjusted", true);
      record.adjusted = true;
      MetricAddCounter(telemetry::kMetricExecAdjustments);
      for (int attempt = 0;
           attempt < options_.max_adjustments && !output.ok(); ++attempt) {
        bool retried = false;
        for (PhysicalImpl alt :
             CandidateImpls(node.logical.op_name, node.logical.args)) {
          if (alt == node.impl) continue;
          if (node.logical.requires_semantics && !ImplSemanticCapable(alt)) {
            continue;
          }
          ++record.retries;
          auto retry = ExecuteOp(node.logical.op_name, alt,
                                 node.logical.args, inputs, ctx);
          if (retry.ok()) {
            output = std::move(retry);
            retried = true;
            break;
          }
        }
        if (!retried) break;
      }
    }

    std::lock_guard<std::mutex> lock(mu);
    if (!output.ok()) {
      node_span.AddAttr("status", output.status().ToString());
      return output.status();
    }
    if (trace != nullptr) {
      node_span.AddAttr("llm_seconds", output->stats.llm_seconds);
      node_span.AddAttr("llm_calls", output->stats.llm_calls);
      node_span.AddAttr("cpu_seconds", output->stats.cpu_seconds);
      node_span.AddAttr("dollars", output->stats.llm_dollars);
    }
    node_stats_[u] = output->stats;
    record.executed = true;
    record.actual_out_card = static_cast<double>(output->value.Cardinality());
    record.partitions = node_partitions[u].size() > 1
                            ? static_cast<int>(node_partitions[u].size())
                            : 1;
    if (!node.logical.output_var.empty()) {
      vars[node.logical.output_var] = output->value;
    }
    return Status::OK();
  };

  Status run_status;
  if (options_.threads > 0 && options_.parallel) {
    ThreadPool pool(static_cast<size_t>(options_.threads));
    run_status = exec::RunDag(plan.dag, &pool, run_node);
  } else {
    run_status = exec::RunDag(plan.dag, nullptr, run_node);
  }

  // Virtual-time accounting from the measured per-node streams.
  std::vector<exec::NodeCost> costs;
  costs.reserve(plan.nodes.size());
  for (size_t i = 0; i < node_stats_.size(); ++i) {
    const OpStats& stats = node_stats_[i];
    exec::NodeCost c;
    c.cpu_seconds = stats.cpu_seconds;
    c.llm_seconds = stats.llm_seconds;
    // Nodes that split carry their measured per-morsel streams so the
    // virtual schedule fans them across servers.
    if (node_partitions[i].size() > 1) {
      c.llm_partitions = node_partitions[i];
      c.max_parallelism = options_.max_intra_op_parallelism;
    }
    costs.push_back(c);
    result.llm_seconds_total += stats.llm_seconds;
    result.llm_dollars_total += stats.llm_dollars;
    result.llm_calls += stats.llm_calls;
  }
  // With a shared pool (serving session) the streams contend with other
  // in-flight queries and the timeline starts at the query's virtual
  // ready time; a private pool reproduces the standalone model.
  const bool shared = options_.shared_pool != nullptr;
  const double base = shared ? options_.start_seconds : 0.0;
  exec::VirtualLlmPool local_pool(std::max(1, options_.num_servers));
  exec::VirtualLlmPool* pool = shared ? options_.shared_pool : &local_pool;
  auto sched = exec::ScheduleDag(plan.dag, costs, pool,
                                 /*sequential=*/!options_.parallel, base);
  if (sched.ok()) {
    // Report times relative to the query's own ready time, so standalone
    // and served queries read the same way; contention shows up as a
    // longer makespan and per-node queue waits.
    result.virtual_seconds = sched->makespan - base;
    // Annotate each node span with its virtual interval on the server
    // pool, plus the time it spent waiting for a free server.
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      const double busy =
          node_stats_[i].cpu_seconds + node_stats_[i].llm_seconds;
      const double queue_wait =
          std::max(0.0, sched->finish[i] - sched->start[i] - busy);
      MetricObserve(telemetry::kMetricExecQueueWait, queue_wait);
      node_executions_[i].virt_start = sched->start[i] - base;
      node_executions_[i].virt_finish = sched->finish[i] - base;
      node_executions_[i].queue_wait_seconds = queue_wait;
      if (trace != nullptr && node_spans[i] != kNoSpan) {
        trace->SetVirtualInterval(node_spans[i], sched->start[i] - base,
                                  sched->finish[i] - base);
        trace->AddAttr(node_spans[i], "queue_wait_seconds", queue_wait);
      }
    }
    // Fraction of the pool's capacity the plan actually kept busy.
    if (result.virtual_seconds > 0) {
      const double capacity = static_cast<double>(pool->num_servers()) *
                              result.virtual_seconds;
      const double occupancy = result.llm_seconds_total / capacity;
      MetricSetGauge(telemetry::kMetricExecPoolOccupancy, occupancy);
      exec_span.AddAttr("pool_occupancy", occupancy);
    }
    exec_span.SetVirtualInterval(0, result.virtual_seconds);
    // Execution timeline for observability.
    std::string timeline;
    char line[256];
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      std::snprintf(line, sizeof(line),
                    "t=%8.2fs..%8.2fs  %-10s <%s> -> %s  (llm %.2fs, %lld "
                    "calls)\n",
                    sched->start[i] - base, sched->finish[i] - base,
                    plan.nodes[i].logical.op_name.c_str(),
                    PhysicalImplName(plan.nodes[i].impl),
                    plan.nodes[i].logical.output_var.c_str(),
                    node_stats_[i].llm_seconds,
                    static_cast<long long>(node_stats_[i].llm_calls));
      timeline += line;
    }
    result.timeline = std::move(timeline);
  }

  result.adjusted = adjusted;
  auto finalize = [&]() {
    if (trace == nullptr) return;
    exec_span.AddAttr("virtual_seconds", result.virtual_seconds);
    exec_span.AddAttr("llm_seconds", result.llm_seconds_total);
    exec_span.AddAttr("llm_calls", result.llm_calls);
    exec_span.AddAttr("dollars", result.llm_dollars_total);
    exec_span.AddAttr("adjusted", result.adjusted);
    if (!result.status.ok()) {
      exec_span.AddAttr("status", result.status.ToString());
    }
  };
  if (!run_status.ok()) {
    // Plan adjustment, stage 2 (Section III-C): an operator failed with
    // every implementation (e.g. a zero-denominator ratio, an empty
    // aggregate). Instead of restarting from scratch, replan the query
    // through the Section V-D fallback strategies.
    if (ctx_.llm != nullptr && !plan.query_text.empty() &&
        options_.max_adjustments > 0) {
      ScopedSpan fallback_span(trace, telemetry::kSpanExecFallback,
                               exec_span.id());
      fallback_span.AddAttr("failed_status", run_status.ToString());
      llm::LlmCall choose;
      choose.type = llm::PromptType::kChooseFallbackStrategy;
      choose.tier = llm::ModelTier::kPlanner;
      choose.fields["query"] = plan.query_text;
      llm::LlmResult strategy = ctx_.llm->Call(choose);
      result.llm_seconds_total += strategy.seconds;
      result.llm_dollars_total += strategy.dollars;
      result.llm_calls += 1;
      // Status contract: a failed strategy choice must not be mistaken for
      // a completion. Fall back to the default RAG strategy explicitly
      // (the call's time/dollars are already charged above).
      const std::string chosen =
          strategy.status.ok() ? strategy.Get("strategy", "rag") : "rag";
      if (!strategy.status.ok()) {
        fallback_span.AddAttr("choose_status", strategy.status.ToString());
      }

      OpArgs args{{"query", plan.query_text},
                  {"strategy", chosen},
                  {"retrieve_k", "100"}};
      fallback_span.AddAttr("strategy", chosen);
      DocList all;
      all.reserve(ctx_.corpus->size());
      for (uint64_t id = 0; id < ctx_.corpus->size(); ++id) {
        all.push_back(id);
      }
      ExecContext ctx = ctx_;
      auto fallback = ExecuteOp("Generate", PhysicalImpl::kLlmGenerate,
                                args, {Value::Docs(std::move(all))}, ctx);
      if (fallback.ok()) {
        result.llm_seconds_total += fallback->stats.llm_seconds;
        result.llm_dollars_total += fallback->stats.llm_dollars;
        result.llm_calls += fallback->stats.llm_calls;
        // The fallback generation is one more stream on the server pool.
        const double fb_ready = base + result.virtual_seconds +
                                fallback->stats.cpu_seconds;
        result.virtual_seconds =
            pool->ScheduleStream(fb_ready, fallback->stats.llm_seconds) -
            base;
        result.answer = fallback->value.ToAnswer();
        result.adjusted = true;
        finalize();
        return result;
      }
    }
    // Graceful degradation, the last line of defense: a *transient* LLM
    // failure that survived retries, plan adjustment AND the fallback
    // replan becomes a degraded (partial/empty) answer instead of a
    // failed query, when the caller opted in.
    if (options_.graceful_degradation &&
        llm::IsTransientLlmFailure(run_status)) {
      result.degraded = true;
      result.degraded_detail =
          "graceful degradation absorbed: " + run_status.ToString();
      result.answer = corpus::Answer::None();
      exec_span.AddAttr("degraded", true);
      exec_span.AddAttr("degraded_detail", result.degraded_detail);
      finalize();
      return result;
    }
    result.status = run_status;
    result.answer = corpus::Answer::None();
    finalize();
    return result;
  }
  auto it = vars.find(plan.answer_var);
  if (it == vars.end()) {
    result.status =
        Status::NotFound("answer variable " + plan.answer_var + " not bound");
    result.answer = corpus::Answer::None();
    finalize();
    return result;
  }
  result.answer = it->second.ToAnswer();
  finalize();
  return result;
}

}  // namespace unify::core
