#ifndef UNIFY_CORE_RUNTIME_SLO_TRACKER_H_
#define UNIFY_CORE_RUNTIME_SLO_TRACKER_H_

#include <cstdint>
#include <deque>
#include <mutex>

namespace unify::core {

/// Tracks a latency/availability service-level objective over rolling
/// windows and computes error-budget burn rates, in the style of
/// multiwindow SLO alerting: a query is "good" when it succeeded and met
/// the latency objective; the burn rate of a window is
///
///     (bad fraction in the window) / (1 - target)
///
/// so 1.0 means the service is spending its error budget exactly at the
/// sustainable rate and 14.4 (the classic fast-window page threshold)
/// means the budget would be gone in 1/14.4 of the SLO period. A breach
/// starts when the fast-window burn rate reaches
/// Options::breach_burn_rate while the slow window confirms sustained
/// burn (slow burn >= 1); it ends when the fast window drops back under
/// the threshold. Breach starts are edge-triggered so the serving layer
/// can emit one `slo_breach` flight-recorder event per episode.
///
/// Determinism: the tracker never reads a clock — every Record()/state()
/// call passes its own timestamp (UnifyService uses wall seconds since
/// construction; tests use scripted sequences). Timestamps must be
/// non-decreasing. Thread-safe.
class SloTracker {
 public:
  struct Options {
    /// Latency objective: a query is good only if total_seconds <= this.
    /// 0 disables the latency term (availability-only SLO).
    double latency_objective_seconds = 0;
    /// Target good fraction (e.g. 0.999 = three nines). Values >= 1 are
    /// clamped just below 1 so the error budget stays positive.
    double target = 0.999;
    /// Fast ("page") window, seconds.
    double fast_window_seconds = 300;
    /// Slow ("confirm") window, seconds.
    double slow_window_seconds = 3600;
    /// Fast-window burn rate at which a breach starts.
    double breach_burn_rate = 14.4;
  };

  /// Point-in-time SLO state (see state()).
  struct State {
    int64_t good = 0;  ///< Lifetime good completions.
    int64_t bad = 0;   ///< Lifetime bad completions.
    int64_t fast_good = 0, fast_bad = 0;
    int64_t slow_good = 0, slow_bad = 0;
    double burn_rate_fast = 0;
    double burn_rate_slow = 0;
    bool in_breach = false;
  };

  /// What one Record() observed — burn rates after the event, plus
  /// whether this event started a breach episode.
  struct Outcome {
    bool good = false;
    bool breach_started = false;
    bool breach_ended = false;
    double burn_rate_fast = 0;
    double burn_rate_slow = 0;
  };

  explicit SloTracker(Options options);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Whether a completion with this status/latency meets the SLO.
  bool IsGood(bool ok, double total_seconds) const;

  /// Records one completion at time `now_seconds`.
  Outcome Record(double now_seconds, bool good);

  /// The state as of `now_seconds` (events older than the windows are
  /// pruned relative to it).
  State state(double now_seconds) const;

  const Options& options() const { return options_; }

 private:
  struct Event {
    double time = 0;
    bool good = false;
  };

  /// Drops events outside the slow window and recomputes the per-window
  /// tallies. Caller holds mu_.
  void PruneLocked(double now_seconds) const;
  double BurnRate(int64_t good, int64_t bad) const;

  Options options_;
  mutable std::mutex mu_;
  /// Events within the slow window, oldest first (the fast window is a
  /// suffix of this deque).
  mutable std::deque<Event> events_;
  int64_t good_ = 0;
  int64_t bad_ = 0;
  bool in_breach_ = false;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_SLO_TRACKER_H_
