#include "core/runtime/unify.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/accuracy.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/telemetry_names.h"
#include "corpus/workload.h"

namespace unify::core {

UnifySystem::UnifySystem(const corpus::Corpus* corpus, llm::LlmClient* llm,
                         UnifyOptions options)
    : corpus_(corpus), llm_(llm), options_(options) {
  registry_ = OperatorRegistry::Default();
}

Status UnifySystem::Setup() {
  // The internal client stack: fault injection under the resilience
  // decorator (so injected faults are what retries/hedges recover from),
  // the shared answer cache above resilience (only final, retry-survived
  // OK completions are admitted — a faulty result cannot poison it),
  // metering outermost so per-PromptType counters always see the final
  // logical call. Injection stays off for all of Setup() — calibration
  // and importance learning must be fault-free.
  fault_llm_ =
      std::make_unique<llm::FaultInjectingLlmClient>(llm_, options_.faults);
  fault_llm_->set_rate_scale(0.0);
  resilient_llm_ = std::make_unique<llm::ResilientLlmClient>(
      fault_llm_.get(), options_.resilience);
  cache_ = std::make_unique<llm::SharedLlmCache>(options_.cache);
  cache_llm_ = std::make_unique<llm::SharedCacheLlmClient>(
      resilient_llm_.get(), cache_.get(), options_.cache.enabled);
  traced_llm_ = std::make_unique<llm::TracingLlmClient>(cache_llm_.get());
  // The cache also stays off for all of Setup(): calibration measures the
  // real per-call costs, and a cache hit during a micro-execution would
  // record zero-cost samples into the cost model (changing plan choice
  // depending on whether the cache is on — exactly the coupling the
  // byte-identity guarantee forbids).
  llm::SharedCacheLlmClient::ScopedUse setup_cache_off(false);

  // --- Operator indexing: embed every logical representation offline ---
  matcher_ = std::make_unique<OperatorMatcher>(&registry_, /*dim=*/48,
                                               options_.seed ^ 0x5151);

  // --- Document embedding + HNSW vector index (Section III-A) ---
  corpus::EmbeddingSpec spec = corpus::BuildEmbeddingSpec(corpus_->profile());
  embedding::TopicEmbedder::Options eopts;
  eopts.dim = options_.embed_dim;
  eopts.seed = options_.seed ^ 0xe1be;
  doc_embedder_ = std::make_unique<embedding::TopicEmbedder>(
      eopts, spec.topic_tokens, spec.aliases);
  doc_vecs_.clear();
  doc_vecs_.reserve(corpus_->size());
  index::HnswIndex::Options hopts;
  hopts.M = 16;
  hopts.ef_construction = 120;
  hopts.ef_search = 96;
  hopts.seed = options_.seed ^ 0x1d8;
  doc_index_ = std::make_unique<index::HnswIndex>(hopts);
  for (const auto& doc : corpus_->docs()) {
    doc_vecs_.push_back(doc_embedder_->Embed(doc.text));
    UNIFY_RETURN_IF_ERROR(doc_index_->Add(doc.id, doc_vecs_.back()));
  }

  // --- Semantic cardinality estimation (Section VI-B) + numeric
  // histograms over surface-extractable attributes ---
  numeric_stats_.Build(*corpus_);
  estimator_ = std::make_unique<CardinalityEstimator>(
      corpus_, doc_embedder_.get(), &doc_vecs_, traced_llm_.get(),
      options_.sce);
  estimator_->set_numeric_stats(&numeric_stats_);
  estimator_->LearnImportanceFunction(corpus::GenerateHistoricalPredicates(
      *corpus_, options_.history_size, options_.seed ^ 0x31));

  // --- Planning engine ---
  generator_ = std::make_unique<PlanGenerator>(
      &registry_, matcher_.get(), traced_llm_.get(), options_.plan);
  OptimizerOptions oopts;
  oopts.mode = options_.physical_mode;
  oopts.objective = options_.objective;
  oopts.reuse_sce_across_queries = options_.reuse_sce_across_queries;
  oopts.corpus_size = corpus_->size();
  oopts.num_categories = corpus_->knowledge().categories().size();
  oopts.num_servers = options_.exec.num_servers;
  oopts.max_intra_op_parallelism =
      std::max(1, options_.exec.max_intra_op_parallelism);
  oopts.llm_batch_size = options_.llm_batch_size;
  oopts.index_candidate_factor = options_.index_candidate_factor;
  oopts.seed = options_.seed ^ 0xabcd;
  optimizer_ = std::make_unique<PhysicalOptimizer>(&cost_model_,
                                                   estimator_.get(), oopts);

  // --- Cost-model calibration from "historical executions" ---
  if (options_.calibrate) {
    UNIFY_RETURN_IF_ERROR(CalibrateCostModel());
  }
  fault_llm_->set_rate_scale(1.0);
  ready_ = true;
  return Status::OK();
}

Status UnifySystem::CalibrateCostModel() {
  // Execute each implementation family on a small document sample and
  // record the measured virtual costs — the paper's "estimating these
  // parameters based on historical execution data" (Section VI-A).
  ExecContext ctx;
  ctx.corpus = corpus_;
  ctx.llm = traced_llm_.get();
  ctx.doc_embedder = doc_embedder_.get();
  ctx.doc_index = doc_index_.get();
  ctx.llm_batch_size = options_.llm_batch_size;

  const size_t sample_n = std::min<size_t>(32, corpus_->size());
  DocList sample;
  for (size_t i = 0; i < sample_n; ++i) {
    sample.push_back(i * (corpus_->size() / sample_n));
  }
  std::vector<Value> doc_input = {Value::Docs(sample)};
  const auto& kb = corpus_->knowledge();
  const std::string phrase =
      kb.categories().empty() ? "anything" : kb.categories().front();

  // Semantic filter (LLM per document).
  {
    OpArgs args{{"kind", "semantic"}, {"phrase", phrase}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Filter", PhysicalImpl::kLlmFilter, args,
                                doc_input, ctx));
    cost_model_.Record("Filter", PhysicalImpl::kLlmFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    // IndexScanFilter verifies candidates with the same per-document call.
    cost_model_.Record("Filter", PhysicalImpl::kIndexScanFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
  }
  // Exact (pre-programmed) filter.
  {
    OpArgs args{{"kind", "numeric"}, {"attribute", "views"},
                {"cmp", "gt"},      {"value", "100"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Filter", PhysicalImpl::kExactFilter, args,
                                doc_input, ctx));
    cost_model_.Record("Filter", PhysicalImpl::kExactFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    cost_model_.Record("Filter", PhysicalImpl::kKeywordFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
  }
  // LLM extraction and aggregation.
  {
    OpArgs args{{"attribute", "views"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Extract", PhysicalImpl::kLlmExtract, args,
                                doc_input, ctx));
    cost_model_.Record("Extract", PhysicalImpl::kLlmExtract, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
    for (const char* agg :
         {"Sum", "Average", "Min", "Max", "Median", "Percentile"}) {
      cost_model_.Record(agg, PhysicalImpl::kLlmAggregate, sample_n,
                         out.stats.llm_seconds, out.stats.cpu_seconds,
                         out.stats.llm_dollars);
    }
  }
  // Regex extraction.
  {
    OpArgs args{{"attribute", "views"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Extract", PhysicalImpl::kRegexExtract, args,
                                doc_input, ctx));
    cost_model_.Record("Extract", PhysicalImpl::kRegexExtract, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    for (const char* agg :
         {"Sum", "Average", "Min", "Max", "Median", "Percentile"}) {
      cost_model_.Record(agg, PhysicalImpl::kPreAggregate, sample_n,
                         out.stats.llm_seconds, out.stats.cpu_seconds);
    }
  }
  // Grouping / classification.
  {
    OpArgs args{{"by", corpus_->category_kind()}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("GroupBy", PhysicalImpl::kLlmGroupBy, args,
                                doc_input, ctx));
    cost_model_.Record("GroupBy", PhysicalImpl::kLlmGroupBy, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    cost_model_.Record("Classify", PhysicalImpl::kLlmClassify, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
  }
  {
    OpArgs args{{"by", corpus_->category_kind()}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("GroupBy", PhysicalImpl::kRuleGroupBy, args,
                                doc_input, ctx));
    cost_model_.Record("GroupBy", PhysicalImpl::kRuleGroupBy, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    cost_model_.Record("Classify", PhysicalImpl::kRuleClassify, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
  }
  return Status::OK();
}

ResolvedQueryOptions QueryRequest::Overrides::ResolveAgainst(
    const UnifyOptions& defaults) const {
  ResolvedQueryOptions r;
  r.objective = objective.value_or(defaults.objective);
  r.physical_mode = physical_mode.value_or(defaults.physical_mode);
  r.collect_trace = collect_trace.value_or(defaults.collect_trace);
  r.max_intra_op_parallelism = std::max(
      1, max_intra_op_parallelism.value_or(
             defaults.exec.max_intra_op_parallelism));
  r.graceful_degradation =
      graceful_degradation.value_or(defaults.graceful_degradation);
  r.retry_budget_seconds =
      retry_budget_seconds.value_or(defaults.default_retry_budget_seconds);
  r.use_llm_cache = use_llm_cache.value_or(defaults.cache.enabled);
  return r;
}

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kAdmission:
      return "admission";
    case QueryPhase::kPlanning:
      return "planning";
    case QueryPhase::kOptimization:
      return "optimization";
    case QueryPhase::kExecution:
      return "execution";
    case QueryPhase::kDegraded:
      return "degraded";
    case QueryPhase::kComplete:
      return "complete";
  }
  return "unknown";
}

std::string QueryResult::explain_analyze() const {
  if (plan_analysis.empty()) return "";
  std::ostringstream os;
  os << "EXPLAIN ANALYZE (makespan est " << FormatDouble(
         predicted_exec_seconds, 1)
     << "s -> actual " << FormatDouble(exec_seconds, 1) << "s";
  if (exec_seconds > 0) {
    const double rel = (predicted_exec_seconds - exec_seconds) /
                       exec_seconds;
    char relbuf[32];
    std::snprintf(relbuf, sizeof(relbuf), "%+.1f%%", 100.0 * rel);
    os << " (" << relbuf << ")";
  }
  os << ", $ est " << FormatDouble(predicted_exec_dollars, 3)
     << " -> actual " << FormatDouble(exec_dollars, 3) << ")\n";
  for (const PlanNodeAnalysis& a : plan_analysis) {
    for (int i = 0; i < a.depth; ++i) os << "  ";
    os << "+- " << a.op_name << " <" << a.impl << "> -> " << a.output_var;
    if (!a.executed) {
      os << "  [not executed]\n";
      continue;
    }
    os << "  card est " << FormatDouble(a.est_in_card, 0) << "->"
       << FormatDouble(a.est_out_card, 0) << " actual "
       << FormatDouble(a.actual_in_card, 0) << "->"
       << FormatDouble(a.actual_out_card, 0) << " (q-err "
       << FormatDouble(a.card_qerror, 2) << ")";
    os << " | est " << FormatDouble(a.est_seconds, 2) << "s actual "
       << FormatDouble(a.actual_seconds, 2) << "s";
    if (a.queue_wait_seconds > 0.005) {
      os << " (+" << FormatDouble(a.queue_wait_seconds, 2) << "s wait)";
    }
    os << " | $ est " << FormatDouble(a.est_dollars, 3) << " actual "
       << FormatDouble(a.actual_dollars, 3);
    if (a.partitions > 1 || a.est_partitions > 1) {
      os << " | x" << a.partitions << " morsels (est x" << a.est_partitions
         << ")";
    }
    if (a.adjusted) {
      os << " | adjusted (" << a.retries << " retries)";
    }
    os << "\n";
  }
  return os.str();
}

QueryResult UnifySystem::Answer(const std::string& query) const {
  QueryRequest request;
  request.text = query;
  return Answer(request);
}

QueryResult UnifySystem::Answer(const QueryRequest& request) const {
  return AnswerInternal(request, /*shared_pool=*/nullptr, /*trace=*/nullptr,
                        kNoSpan);
}

QueryResult UnifySystem::AnswerInternal(const QueryRequest& request,
                                        exec::VirtualLlmPool* shared_pool,
                                        std::shared_ptr<Trace> trace,
                                        SpanId parent) const {
  QueryResult result;
  result.client_tag = request.client_tag;
  result.query_id = request.query_id != 0 ? request.query_id
                                          : StableHash64(request.text);
  if (!ready_) {
    result.status = Status::FailedPrecondition("Setup() not called");
    result.phase = QueryPhase::kAdmission;
    return result;
  }
  if (request.text.empty()) {
    result.status = Status::InvalidArgument("empty query text");
    result.phase = QueryPhase::kAdmission;
    return result;
  }

  // The one per-query options resolution: every request override is
  // folded against the system-wide defaults here, and the rest of the
  // pipeline reads only the resolved values.
  const ResolvedQueryOptions resolved =
      request.overrides.ResolveAgainst(options_);
  if (trace == nullptr && resolved.collect_trace) {
    trace = std::make_shared<Trace>();
  }
  // Virtual arrival: explicit request time (closed-loop clients), else the
  // serving clock, else 0 for a standalone call.
  result.arrival_seconds =
      request.arrival_seconds >= 0
          ? request.arrival_seconds
          : (shared_pool != nullptr ? shared_pool->Now() : 0.0);

  // Per-query metrics: a local registry installed as this thread's sink
  // (and, via PlanExecutor::Options::metrics_sink, on every executor
  // worker that touches this query). Instrumented sites record into the
  // global registry AND the installed sink, so result.metrics is exact
  // even when other queries run concurrently in the process.
  MetricsRegistry query_metrics;
  MetricsRegistry::ScopedSink metrics_scope(&query_metrics);

  // Retry budget: one shared pool of virtual backoff/retry seconds per
  // query, drained by every thread that retries on its behalf. The
  // resolved request value, clamped so retrying can never spend past an
  // explicit deadline.
  double budget_seconds = resolved.retry_budget_seconds;
  if (request.deadline_seconds > 0) {
    budget_seconds = std::min(budget_seconds, request.deadline_seconds);
  }
  llm::RetryBudget retry_budget(budget_seconds);
  // Covers planning + SCE on this thread; PlanExecutor installs the same
  // budget on its DAG/morsel workers via Options::retry_budget.
  llm::RetryBudget::ScopedUse budget_scope(&retry_budget);

  // Shared-cache routing for this query's calls on this thread; the
  // executor re-installs the same choice on its DAG/morsel workers via
  // Options::use_llm_cache.
  llm::SharedCacheLlmClient::ScopedUse cache_scope(resolved.use_llm_cache);

  ScopedSpan root(trace.get(), telemetry::kSpanQuery, parent);
  root.AddAttr("query", request.text);
  if (!request.client_tag.empty()) {
    root.AddAttr("client", request.client_tag);
  }

  // Attaches the trace and this query's metrics delta; the llm.*, plan.*,
  // sce.* and exec.* counter deltas become root-span attributes so they
  // survive into the exported Chrome JSON.
  auto finalize = [&]() {
    result.total_seconds = result.plan_seconds + result.exec_seconds;
    result.completion_seconds = result.arrival_seconds + result.total_seconds;
    if (result.status.ok()) {
      result.phase =
          result.degraded ? QueryPhase::kDegraded : QueryPhase::kComplete;
    }
    result.metrics = query_metrics.Snapshot();
    // Exact per-query cache attribution: the llm.cache.* counters were
    // dual-written into this query's sink by every thread that worked on
    // it, so these are this query's items alone.
    auto cache_counter = [&](const char* name) -> int64_t {
      auto it = result.metrics.counters.find(name);
      return it == result.metrics.counters.end()
                 ? 0
                 : static_cast<int64_t>(it->second + 0.5);
    };
    result.cache_item_hits = cache_counter(telemetry::kMetricLlmCacheHits);
    result.cache_coalesced = cache_counter(telemetry::kMetricLlmCacheCoalesced);
    if (trace != nullptr) {
      root.AddAttr("status", result.status.ok()
                                 ? std::string("ok")
                                 : result.status.ToString());
      root.AddAttr("phase", QueryPhaseName(result.phase));
      root.AddAttr("plan_seconds", result.plan_seconds);
      root.AddAttr("exec_seconds", result.exec_seconds);
      root.AddAttr("total_seconds", result.total_seconds);
      root.AddAttr("exec_dollars", result.exec_dollars);
      root.SetVirtualInterval(0, result.total_seconds);
      for (const auto& [name, value] : result.metrics.counters) {
        root.AddAttr(name, value);
      }
    }
    result.trace = trace;
  };

  // --- Logical plan generation (Section V) ---
  auto generated = generator_->Generate(request.text, trace.get(), root.id());
  if (!generated.ok()) {
    result.status = generated.status();
    result.phase = QueryPhase::kPlanning;
    finalize();
    return result;
  }
  result.plan_seconds += generated->planning_seconds;
  result.num_candidate_plans = static_cast<int>(generated->plans.size());
  result.used_fallback = generated->used_fallback;

  // --- Physical plan generation + plan selection (Section VI), under the
  // request's per-query objective / mode overrides ---
  OptimizerOptions oopts = optimizer_->options();
  oopts.objective = resolved.objective;
  oopts.mode = resolved.physical_mode;
  // The optimizer predicts and the executor runs under the same
  // intra-operator parallelism.
  oopts.max_intra_op_parallelism = resolved.max_intra_op_parallelism;
  auto physical =
      optimizer_->SelectBest(generated->plans, oopts, trace.get(), root.id());
  if (!physical.ok()) {
    result.status = physical.status();
    result.phase = QueryPhase::kOptimization;
    finalize();
    return result;
  }
  result.plan_seconds += physical->optimize_llm_seconds;
  result.plan_debug = physical->DebugString();
  result.plan_explain = physical->Explain();
  result.predicted_exec_seconds = physical->est_makespan;
  result.predicted_exec_dollars = physical->est_total_dollars;

  // Deadline pre-check: if planning plus the *predicted* makespan already
  // overruns the budget, abort before spending execution-side LLM calls.
  if (request.deadline_seconds > 0 &&
      result.plan_seconds + physical->est_makespan >
          request.deadline_seconds) {
    result.status = Status::DeadlineExceeded(
        "predicted completion " +
        std::to_string(result.plan_seconds + physical->est_makespan) +
        "s exceeds deadline " + std::to_string(request.deadline_seconds) +
        "s");
    result.phase = QueryPhase::kOptimization;
    finalize();
    return result;
  }

  // --- Execution (Section III-C) ---
  ExecContext ctx;
  ctx.corpus = corpus_;
  ctx.llm = traced_llm_.get();
  ctx.doc_embedder = doc_embedder_.get();
  ctx.doc_index = doc_index_.get();
  ctx.custom_ops = options_.custom_ops;
  ctx.llm_batch_size = options_.llm_batch_size;
  PlanExecutor::Options eopts = options_.exec;
  eopts.max_intra_op_parallelism = resolved.max_intra_op_parallelism;
  eopts.shared_pool = shared_pool;
  // Execution streams become ready once planning finishes on the virtual
  // clock (planning runs on the planner tier, not the worker pool).
  eopts.start_seconds = result.arrival_seconds + result.plan_seconds;
  eopts.metrics_sink = &query_metrics;
  eopts.retry_budget = &retry_budget;
  eopts.graceful_degradation = resolved.graceful_degradation;
  eopts.use_llm_cache = resolved.use_llm_cache;
  PlanExecutor executor(ctx, eopts);
  ExecutionResult exec = executor.Execute(*physical, trace.get(), root.id());
  result.exec_seconds = exec.virtual_seconds;
  result.exec_dollars = exec.llm_dollars_total;
  result.timeline = exec.timeline;
  result.adjusted = exec.adjusted;
  result.answer = exec.answer;
  result.status = exec.status;
  result.degraded = exec.degraded;
  result.degraded_detail = exec.degraded_detail;
  if (!result.status.ok()) {
    result.phase = QueryPhase::kExecution;
  } else if (request.deadline_seconds > 0 &&
             result.plan_seconds + result.exec_seconds >
                 request.deadline_seconds) {
    // Deadline post-check on the measured virtual completion (the answer
    // stays attached for diagnostics).
    result.status = Status::DeadlineExceeded(
        "completed at " +
        std::to_string(result.plan_seconds + result.exec_seconds) +
        "s, after the " + std::to_string(request.deadline_seconds) +
        "s deadline");
    result.phase = QueryPhase::kExecution;
    // A degraded answer that also missed its deadline reports the miss.
    result.degraded = false;
    result.degraded_detail.clear();
  }

  // --- EXPLAIN ANALYZE + accuracy ledger: the optimizer's estimates next
  // to what execution measured, per node and plan-wide ---
  {
    auto& ledger = AccuracyLedger::Global();
    const auto& stats = executor.node_stats();
    const auto& actuals = executor.node_executions();
    // Hindsight impl audit: with the measured cardinalities in hand, is
    // the chosen implementation still the cost-model argmin among the
    // semantically valid candidates? Index-scan alternatives are skipped
    // unless chosen — their cost depends on an index_candidates argument
    // the optimizer only computes when it selects them.
    auto hindsight_optimal = [&](const PhysicalNode& node,
                                 const NodeExecution& actual) {
      double chosen_cost = -1;
      double best_cost = -1;
      for (PhysicalImpl alt :
           CandidateImpls(node.logical.op_name, node.logical.args)) {
        if (node.logical.requires_semantics && !ImplSemanticCapable(alt)) {
          continue;
        }
        if (alt == PhysicalImpl::kIndexScanFilter && alt != node.impl) {
          continue;
        }
        const double cost =
            oopts.objective == OptimizeObjective::kDollars
                ? cost_model_.EstimateDollars(
                      node.logical.op_name, alt, node.logical.args,
                      actual.actual_in_card, actual.actual_out_card)
                : cost_model_.EstimateSeconds(
                      node.logical.op_name, alt, node.logical.args,
                      actual.actual_in_card, actual.actual_out_card);
        if (alt == node.impl) chosen_cost = cost;
        if (best_cost < 0 || cost < best_cost) best_cost = cost;
      }
      // Impls outside the candidate list (custom operators) have no
      // alternative to compare against.
      if (chosen_cost < 0) return true;
      return chosen_cost <= best_cost * (1 + 1e-9);
    };
    // Render order and indentation depth, matching Explain().
    auto order = physical->dag.TopologicalOrder();
    std::vector<int> render;
    std::vector<int> depth(physical->nodes.size(), 0);
    if (order.ok()) {
      render = *order;
      for (int u : render) {
        for (int v : physical->dag.children(u)) {
          depth[v] = std::max(depth[v], depth[u] + 1);
        }
      }
    } else {
      render.resize(physical->nodes.size());
      for (size_t i = 0; i < render.size(); ++i) {
        render[i] = static_cast<int>(i);
      }
    }
    result.plan_analysis.reserve(render.size());
    for (int u : render) {
      const PhysicalNode& node = physical->nodes[u];
      const NodeExecution& actual = actuals[u];
      const OpStats& st = stats[u];
      PlanNodeAnalysis a;
      a.op_name = node.logical.op_name;
      a.impl = PhysicalImplName(node.impl);
      a.output_var = node.logical.output_var;
      a.depth = depth[u];
      a.executed = actual.executed;
      a.est_in_card = node.est_in_card;
      a.est_out_card = node.est_out_card;
      a.actual_in_card = actual.actual_in_card;
      a.actual_out_card = actual.actual_out_card;
      a.est_seconds = node.est_seconds;
      a.actual_seconds = st.cpu_seconds + st.llm_seconds;
      a.virt_start = actual.virt_start;
      a.virt_finish = actual.virt_finish;
      a.queue_wait_seconds = actual.queue_wait_seconds;
      a.est_dollars = node.est_dollars;
      a.actual_dollars = st.llm_dollars;
      a.llm_calls = st.llm_calls;
      a.est_partitions = node.est_partitions;
      a.partitions = actual.partitions;
      a.adjusted = actual.adjusted;
      a.retries = actual.retries;
      if (actual.executed) {
        a.card_qerror = QError(a.est_out_card, a.actual_out_card);
        ledger.RecordCardQError(a.card_qerror);
        ledger.RecordImplChoice(a.impl, hindsight_optimal(node, actual));
      }
      result.plan_analysis.push_back(std::move(a));
    }
    if (result.exec_seconds > 0) {
      ledger.RecordMakespanRelError(
          std::abs(result.predicted_exec_seconds - result.exec_seconds) /
          result.exec_seconds);
    }
    if (result.exec_dollars > 0) {
      ledger.RecordDollarsRelError(
          std::abs(result.predicted_exec_dollars - result.exec_dollars) /
          result.exec_dollars);
    }
  }

  // Feed measured costs back into the model (running calibration). Off
  // when cost_feedback is disabled, keeping plan choice independent of
  // which queries ran earlier.
  if (options_.cost_feedback) {
    const auto& stats = executor.node_stats();
    for (size_t i = 0; i < stats.size() && i < physical->nodes.size(); ++i) {
      if (stats[i].llm_calls == 0) continue;
      size_t card = static_cast<size_t>(
          std::max(1.0, physical->nodes[i].est_in_card));
      cost_model_.Record(physical->nodes[i].logical.op_name,
                         physical->nodes[i].impl, card, stats[i].llm_seconds,
                         stats[i].cpu_seconds, stats[i].llm_dollars);
    }
  }
  finalize();
  return result;
}

}  // namespace unify::core
