#include "core/runtime/unify.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/telemetry_names.h"
#include "corpus/workload.h"

namespace unify::core {

UnifySystem::UnifySystem(const corpus::Corpus* corpus, llm::LlmClient* llm,
                         UnifyOptions options)
    : corpus_(corpus), llm_(llm), options_(options) {
  registry_ = OperatorRegistry::Default();
}

Status UnifySystem::Setup() {
  // Every internal LLM call goes through the metering decorator so that
  // per-PromptType counters are recorded for any client implementation.
  traced_llm_ = std::make_unique<llm::TracingLlmClient>(llm_);

  // --- Operator indexing: embed every logical representation offline ---
  matcher_ = std::make_unique<OperatorMatcher>(&registry_, /*dim=*/48,
                                               options_.seed ^ 0x5151);

  // --- Document embedding + HNSW vector index (Section III-A) ---
  corpus::EmbeddingSpec spec = corpus::BuildEmbeddingSpec(corpus_->profile());
  embedding::TopicEmbedder::Options eopts;
  eopts.dim = options_.embed_dim;
  eopts.seed = options_.seed ^ 0xe1be;
  doc_embedder_ = std::make_unique<embedding::TopicEmbedder>(
      eopts, spec.topic_tokens, spec.aliases);
  doc_vecs_.clear();
  doc_vecs_.reserve(corpus_->size());
  index::HnswIndex::Options hopts;
  hopts.M = 16;
  hopts.ef_construction = 120;
  hopts.ef_search = 96;
  hopts.seed = options_.seed ^ 0x1d8;
  doc_index_ = std::make_unique<index::HnswIndex>(hopts);
  for (const auto& doc : corpus_->docs()) {
    doc_vecs_.push_back(doc_embedder_->Embed(doc.text));
    UNIFY_RETURN_IF_ERROR(doc_index_->Add(doc.id, doc_vecs_.back()));
  }

  // --- Semantic cardinality estimation (Section VI-B) + numeric
  // histograms over surface-extractable attributes ---
  numeric_stats_.Build(*corpus_);
  estimator_ = std::make_unique<CardinalityEstimator>(
      corpus_, doc_embedder_.get(), &doc_vecs_, traced_llm_.get(),
      options_.sce);
  estimator_->set_numeric_stats(&numeric_stats_);
  estimator_->LearnImportanceFunction(corpus::GenerateHistoricalPredicates(
      *corpus_, options_.history_size, options_.seed ^ 0x31));

  // --- Planning engine ---
  generator_ = std::make_unique<PlanGenerator>(
      &registry_, matcher_.get(), traced_llm_.get(), options_.plan);
  OptimizerOptions oopts;
  oopts.mode = options_.physical_mode;
  oopts.objective = options_.objective;
  oopts.reuse_sce_across_queries = options_.reuse_sce_across_queries;
  oopts.corpus_size = corpus_->size();
  oopts.num_categories = corpus_->knowledge().categories().size();
  oopts.num_servers = options_.exec.num_servers;
  oopts.max_intra_op_parallelism =
      std::max(1, options_.exec.max_intra_op_parallelism);
  oopts.llm_batch_size = options_.llm_batch_size;
  oopts.index_candidate_factor = options_.index_candidate_factor;
  oopts.seed = options_.seed ^ 0xabcd;
  optimizer_ = std::make_unique<PhysicalOptimizer>(&cost_model_,
                                                   estimator_.get(), oopts);

  // --- Cost-model calibration from "historical executions" ---
  if (options_.calibrate) {
    UNIFY_RETURN_IF_ERROR(CalibrateCostModel());
  }
  ready_ = true;
  return Status::OK();
}

Status UnifySystem::CalibrateCostModel() {
  // Execute each implementation family on a small document sample and
  // record the measured virtual costs — the paper's "estimating these
  // parameters based on historical execution data" (Section VI-A).
  ExecContext ctx;
  ctx.corpus = corpus_;
  ctx.llm = traced_llm_.get();
  ctx.doc_embedder = doc_embedder_.get();
  ctx.doc_index = doc_index_.get();
  ctx.llm_batch_size = options_.llm_batch_size;

  const size_t sample_n = std::min<size_t>(32, corpus_->size());
  DocList sample;
  for (size_t i = 0; i < sample_n; ++i) {
    sample.push_back(i * (corpus_->size() / sample_n));
  }
  std::vector<Value> doc_input = {Value::Docs(sample)};
  const auto& kb = corpus_->knowledge();
  const std::string phrase =
      kb.categories().empty() ? "anything" : kb.categories().front();

  // Semantic filter (LLM per document).
  {
    OpArgs args{{"kind", "semantic"}, {"phrase", phrase}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Filter", PhysicalImpl::kLlmFilter, args,
                                doc_input, ctx));
    cost_model_.Record("Filter", PhysicalImpl::kLlmFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    // IndexScanFilter verifies candidates with the same per-document call.
    cost_model_.Record("Filter", PhysicalImpl::kIndexScanFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
  }
  // Exact (pre-programmed) filter.
  {
    OpArgs args{{"kind", "numeric"}, {"attribute", "views"},
                {"cmp", "gt"},      {"value", "100"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Filter", PhysicalImpl::kExactFilter, args,
                                doc_input, ctx));
    cost_model_.Record("Filter", PhysicalImpl::kExactFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    cost_model_.Record("Filter", PhysicalImpl::kKeywordFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
  }
  // LLM extraction and aggregation.
  {
    OpArgs args{{"attribute", "views"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Extract", PhysicalImpl::kLlmExtract, args,
                                doc_input, ctx));
    cost_model_.Record("Extract", PhysicalImpl::kLlmExtract, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
    for (const char* agg :
         {"Sum", "Average", "Min", "Max", "Median", "Percentile"}) {
      cost_model_.Record(agg, PhysicalImpl::kLlmAggregate, sample_n,
                         out.stats.llm_seconds, out.stats.cpu_seconds,
                         out.stats.llm_dollars);
    }
  }
  // Regex extraction.
  {
    OpArgs args{{"attribute", "views"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Extract", PhysicalImpl::kRegexExtract, args,
                                doc_input, ctx));
    cost_model_.Record("Extract", PhysicalImpl::kRegexExtract, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    for (const char* agg :
         {"Sum", "Average", "Min", "Max", "Median", "Percentile"}) {
      cost_model_.Record(agg, PhysicalImpl::kPreAggregate, sample_n,
                         out.stats.llm_seconds, out.stats.cpu_seconds);
    }
  }
  // Grouping / classification.
  {
    OpArgs args{{"by", corpus_->category_kind()}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("GroupBy", PhysicalImpl::kLlmGroupBy, args,
                                doc_input, ctx));
    cost_model_.Record("GroupBy", PhysicalImpl::kLlmGroupBy, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    cost_model_.Record("Classify", PhysicalImpl::kLlmClassify, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
  }
  {
    OpArgs args{{"by", corpus_->category_kind()}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("GroupBy", PhysicalImpl::kRuleGroupBy, args,
                                doc_input, ctx));
    cost_model_.Record("GroupBy", PhysicalImpl::kRuleGroupBy, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    cost_model_.Record("Classify", PhysicalImpl::kRuleClassify, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
  }
  return Status::OK();
}

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kAdmission:
      return "admission";
    case QueryPhase::kPlanning:
      return "planning";
    case QueryPhase::kOptimization:
      return "optimization";
    case QueryPhase::kExecution:
      return "execution";
    case QueryPhase::kComplete:
      return "complete";
  }
  return "unknown";
}

QueryResult UnifySystem::Answer(const std::string& query) const {
  QueryRequest request;
  request.text = query;
  return Answer(request);
}

QueryResult UnifySystem::Answer(const QueryRequest& request) const {
  return AnswerInternal(request, /*shared_pool=*/nullptr, /*trace=*/nullptr,
                        kNoSpan);
}

QueryResult UnifySystem::AnswerInternal(const QueryRequest& request,
                                        exec::VirtualLlmPool* shared_pool,
                                        std::shared_ptr<Trace> trace,
                                        SpanId parent) const {
  QueryResult result;
  result.client_tag = request.client_tag;
  result.query_id = request.query_id != 0 ? request.query_id
                                          : StableHash64(request.text);
  if (!ready_) {
    result.status = Status::FailedPrecondition("Setup() not called");
    result.phase = QueryPhase::kAdmission;
    return result;
  }
  if (request.text.empty()) {
    result.status = Status::InvalidArgument("empty query text");
    result.phase = QueryPhase::kAdmission;
    return result;
  }

  const bool collect_trace =
      request.collect_trace.value_or(options_.collect_trace);
  if (trace == nullptr && collect_trace) trace = std::make_shared<Trace>();
  // Virtual arrival: explicit request time (closed-loop clients), else the
  // serving clock, else 0 for a standalone call.
  result.arrival_seconds =
      request.arrival_seconds >= 0
          ? request.arrival_seconds
          : (shared_pool != nullptr ? shared_pool->Now() : 0.0);

  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  ScopedSpan root(trace.get(), telemetry::kSpanQuery, parent);
  root.AddAttr("query", request.text);
  if (!request.client_tag.empty()) {
    root.AddAttr("client", request.client_tag);
  }

  // Attaches the trace and this query's metrics delta; the llm.*, plan.*,
  // sce.* and exec.* counter deltas become root-span attributes so they
  // survive into the exported Chrome JSON.
  auto finalize = [&]() {
    result.total_seconds = result.plan_seconds + result.exec_seconds;
    result.completion_seconds = result.arrival_seconds + result.total_seconds;
    if (result.status.ok()) {
      result.phase = QueryPhase::kComplete;
    }
    result.metrics = MetricsRegistry::Global().Snapshot().DeltaSince(before);
    if (trace != nullptr) {
      root.AddAttr("status", result.status.ok()
                                 ? std::string("ok")
                                 : result.status.ToString());
      root.AddAttr("phase", QueryPhaseName(result.phase));
      root.AddAttr("plan_seconds", result.plan_seconds);
      root.AddAttr("exec_seconds", result.exec_seconds);
      root.AddAttr("total_seconds", result.total_seconds);
      root.AddAttr("exec_dollars", result.exec_dollars);
      root.SetVirtualInterval(0, result.total_seconds);
      for (const auto& [name, value] : result.metrics.counters) {
        root.AddAttr(name, value);
      }
    }
    result.trace = trace;
  };

  // --- Logical plan generation (Section V) ---
  auto generated = generator_->Generate(request.text, trace.get(), root.id());
  if (!generated.ok()) {
    result.status = generated.status();
    result.phase = QueryPhase::kPlanning;
    finalize();
    return result;
  }
  result.plan_seconds += generated->planning_seconds;
  result.num_candidate_plans = static_cast<int>(generated->plans.size());
  result.used_fallback = generated->used_fallback;

  // --- Physical plan generation + plan selection (Section VI), under the
  // request's per-query objective / mode overrides ---
  OptimizerOptions oopts = optimizer_->options();
  if (request.objective.has_value()) oopts.objective = *request.objective;
  if (request.physical_mode.has_value()) oopts.mode = *request.physical_mode;
  // Effective intra-operator parallelism: the request override wins, else
  // the system-wide setting; the optimizer predicts and the executor runs
  // under the same value.
  const int intra_op_parallelism =
      std::max(1, request.max_intra_op_parallelism.value_or(
                      options_.exec.max_intra_op_parallelism));
  oopts.max_intra_op_parallelism = intra_op_parallelism;
  auto physical =
      optimizer_->SelectBest(generated->plans, oopts, trace.get(), root.id());
  if (!physical.ok()) {
    result.status = physical.status();
    result.phase = QueryPhase::kOptimization;
    finalize();
    return result;
  }
  result.plan_seconds += physical->optimize_llm_seconds;
  result.plan_debug = physical->DebugString();
  result.plan_explain = physical->Explain();
  result.predicted_exec_seconds = physical->est_makespan;

  // Deadline pre-check: if planning plus the *predicted* makespan already
  // overruns the budget, abort before spending execution-side LLM calls.
  if (request.deadline_seconds > 0 &&
      result.plan_seconds + physical->est_makespan >
          request.deadline_seconds) {
    result.status = Status::DeadlineExceeded(
        "predicted completion " +
        std::to_string(result.plan_seconds + physical->est_makespan) +
        "s exceeds deadline " + std::to_string(request.deadline_seconds) +
        "s");
    result.phase = QueryPhase::kOptimization;
    finalize();
    return result;
  }

  // --- Execution (Section III-C) ---
  ExecContext ctx;
  ctx.corpus = corpus_;
  ctx.llm = traced_llm_.get();
  ctx.doc_embedder = doc_embedder_.get();
  ctx.doc_index = doc_index_.get();
  ctx.custom_ops = options_.custom_ops;
  ctx.llm_batch_size = options_.llm_batch_size;
  PlanExecutor::Options eopts = options_.exec;
  eopts.max_intra_op_parallelism = intra_op_parallelism;
  eopts.shared_pool = shared_pool;
  // Execution streams become ready once planning finishes on the virtual
  // clock (planning runs on the planner tier, not the worker pool).
  eopts.start_seconds = result.arrival_seconds + result.plan_seconds;
  PlanExecutor executor(ctx, eopts);
  ExecutionResult exec = executor.Execute(*physical, trace.get(), root.id());
  result.exec_seconds = exec.virtual_seconds;
  result.exec_dollars = exec.llm_dollars_total;
  result.timeline = exec.timeline;
  result.adjusted = exec.adjusted;
  result.answer = exec.answer;
  result.status = exec.status;
  if (!result.status.ok()) {
    result.phase = QueryPhase::kExecution;
  } else if (request.deadline_seconds > 0 &&
             result.plan_seconds + result.exec_seconds >
                 request.deadline_seconds) {
    // Deadline post-check on the measured virtual completion (the answer
    // stays attached for diagnostics).
    result.status = Status::DeadlineExceeded(
        "completed at " +
        std::to_string(result.plan_seconds + result.exec_seconds) +
        "s, after the " + std::to_string(request.deadline_seconds) +
        "s deadline");
    result.phase = QueryPhase::kExecution;
  }

  // Feed measured costs back into the model (running calibration). Off
  // when cost_feedback is disabled, keeping plan choice independent of
  // which queries ran earlier.
  if (options_.cost_feedback) {
    const auto& stats = executor.node_stats();
    for (size_t i = 0; i < stats.size() && i < physical->nodes.size(); ++i) {
      if (stats[i].llm_calls == 0) continue;
      size_t card = static_cast<size_t>(
          std::max(1.0, physical->nodes[i].est_in_card));
      cost_model_.Record(physical->nodes[i].logical.op_name,
                         physical->nodes[i].impl, card, stats[i].llm_seconds,
                         stats[i].cpu_seconds, stats[i].llm_dollars);
    }
  }
  finalize();
  return result;
}

}  // namespace unify::core
