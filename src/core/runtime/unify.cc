#include "core/runtime/unify.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/runtime/query_pipeline.h"
#include "corpus/workload.h"

namespace unify::core {

UnifySystem::UnifySystem(const corpus::Corpus* corpus, llm::LlmClient* llm,
                         UnifyOptions options)
    : corpus_(corpus), llm_(llm), options_(options) {
  registry_ = OperatorRegistry::Default();
}

Status UnifySystem::Setup() {
  // The internal client stack: fault injection under the resilience
  // decorator (so injected faults are what retries/hedges recover from),
  // the shared answer cache above resilience (only final, retry-survived
  // OK completions are admitted — a faulty result cannot poison it),
  // metering outermost so per-PromptType counters always see the final
  // logical call. Injection stays off for all of Setup() — calibration
  // and importance learning must be fault-free.
  fault_llm_ =
      std::make_unique<llm::FaultInjectingLlmClient>(llm_, options_.faults);
  fault_llm_->set_rate_scale(0.0);
  resilient_llm_ = std::make_unique<llm::ResilientLlmClient>(
      fault_llm_.get(), options_.resilience);
  cache_ = std::make_unique<llm::SharedLlmCache>(options_.cache);
  cache_llm_ = std::make_unique<llm::SharedCacheLlmClient>(
      resilient_llm_.get(), cache_.get(), options_.cache.enabled);
  traced_llm_ = std::make_unique<llm::TracingLlmClient>(cache_llm_.get());
  // The cache also stays off for all of Setup(): calibration measures the
  // real per-call costs, and a cache hit during a micro-execution would
  // record zero-cost samples into the cost model (changing plan choice
  // depending on whether the cache is on — exactly the coupling the
  // byte-identity guarantee forbids).
  llm::SharedCacheLlmClient::ScopedUse setup_cache_off(false);

  // --- Operator indexing: embed every logical representation offline ---
  matcher_ = std::make_unique<OperatorMatcher>(&registry_, /*dim=*/48,
                                               options_.seed ^ 0x5151);

  // --- Document embedding + HNSW vector index (Section III-A) ---
  corpus::EmbeddingSpec spec = corpus::BuildEmbeddingSpec(corpus_->profile());
  embedding::TopicEmbedder::Options eopts;
  eopts.dim = options_.embed_dim;
  eopts.seed = options_.seed ^ 0xe1be;
  doc_embedder_ = std::make_unique<embedding::TopicEmbedder>(
      eopts, spec.topic_tokens, spec.aliases);
  doc_vecs_.clear();
  doc_vecs_.reserve(corpus_->size());
  index::HnswIndex::Options hopts;
  hopts.M = 16;
  hopts.ef_construction = 120;
  hopts.ef_search = 96;
  hopts.seed = options_.seed ^ 0x1d8;
  doc_index_ = std::make_unique<index::HnswIndex>(hopts);
  for (const auto& doc : corpus_->docs()) {
    doc_vecs_.push_back(doc_embedder_->Embed(doc.text));
    UNIFY_RETURN_IF_ERROR(doc_index_->Add(doc.id, doc_vecs_.back()));
  }

  // --- Semantic cardinality estimation (Section VI-B) + numeric
  // histograms over surface-extractable attributes ---
  numeric_stats_.Build(*corpus_);
  estimator_ = std::make_unique<CardinalityEstimator>(
      corpus_, doc_embedder_.get(), &doc_vecs_, traced_llm_.get(),
      options_.sce);
  estimator_->set_numeric_stats(&numeric_stats_);
  estimator_->LearnImportanceFunction(corpus::GenerateHistoricalPredicates(
      *corpus_, options_.history_size, options_.seed ^ 0x31));

  // --- Planning engine ---
  generator_ = std::make_unique<PlanGenerator>(
      &registry_, matcher_.get(), traced_llm_.get(), options_.plan);
  OptimizerOptions oopts;
  oopts.mode = options_.physical_mode;
  oopts.objective = options_.objective;
  oopts.reuse_sce_across_queries = options_.reuse_sce_across_queries;
  oopts.corpus_size = corpus_->size();
  oopts.num_categories = corpus_->knowledge().categories().size();
  oopts.num_servers = options_.exec.num_servers;
  oopts.max_intra_op_parallelism =
      std::max(1, options_.exec.max_intra_op_parallelism);
  oopts.llm_batch_size = options_.llm_batch_size;
  oopts.index_candidate_factor = options_.index_candidate_factor;
  oopts.card_est_scale = options_.card_est_scale;
  oopts.seed = options_.seed ^ 0xabcd;
  optimizer_ = std::make_unique<PhysicalOptimizer>(&cost_model_,
                                                   estimator_.get(), oopts);

  // --- Cost-model calibration from "historical executions" ---
  if (options_.calibrate) {
    UNIFY_RETURN_IF_ERROR(CalibrateCostModel());
  }
  fault_llm_->set_rate_scale(1.0);
  ready_ = true;
  return Status::OK();
}

Status UnifySystem::CalibrateCostModel() {
  // Execute each implementation family on a small document sample and
  // record the measured virtual costs — the paper's "estimating these
  // parameters based on historical execution data" (Section VI-A).
  ExecContext ctx;
  ctx.corpus = corpus_;
  ctx.llm = traced_llm_.get();
  ctx.doc_embedder = doc_embedder_.get();
  ctx.doc_index = doc_index_.get();
  ctx.llm_batch_size = options_.llm_batch_size;

  const size_t sample_n = std::min<size_t>(32, corpus_->size());
  DocList sample;
  for (size_t i = 0; i < sample_n; ++i) {
    sample.push_back(i * (corpus_->size() / sample_n));
  }
  std::vector<Value> doc_input = {Value::Docs(sample)};
  const auto& kb = corpus_->knowledge();
  const std::string phrase =
      kb.categories().empty() ? "anything" : kb.categories().front();

  // Semantic filter (LLM per document).
  {
    OpArgs args{{"kind", "semantic"}, {"phrase", phrase}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Filter", PhysicalImpl::kLlmFilter, args,
                                doc_input, ctx));
    cost_model_.Record("Filter", PhysicalImpl::kLlmFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    // IndexScanFilter verifies candidates with the same per-document call.
    cost_model_.Record("Filter", PhysicalImpl::kIndexScanFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
  }
  // Exact (pre-programmed) filter.
  {
    OpArgs args{{"kind", "numeric"}, {"attribute", "views"},
                {"cmp", "gt"},      {"value", "100"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Filter", PhysicalImpl::kExactFilter, args,
                                doc_input, ctx));
    cost_model_.Record("Filter", PhysicalImpl::kExactFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    cost_model_.Record("Filter", PhysicalImpl::kKeywordFilter, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
  }
  // LLM extraction and aggregation.
  {
    OpArgs args{{"attribute", "views"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Extract", PhysicalImpl::kLlmExtract, args,
                                doc_input, ctx));
    cost_model_.Record("Extract", PhysicalImpl::kLlmExtract, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
    for (const char* agg :
         {"Sum", "Average", "Min", "Max", "Median", "Percentile"}) {
      cost_model_.Record(agg, PhysicalImpl::kLlmAggregate, sample_n,
                         out.stats.llm_seconds, out.stats.cpu_seconds,
                         out.stats.llm_dollars);
    }
  }
  // Regex extraction.
  {
    OpArgs args{{"attribute", "views"}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("Extract", PhysicalImpl::kRegexExtract, args,
                                doc_input, ctx));
    cost_model_.Record("Extract", PhysicalImpl::kRegexExtract, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    for (const char* agg :
         {"Sum", "Average", "Min", "Max", "Median", "Percentile"}) {
      cost_model_.Record(agg, PhysicalImpl::kPreAggregate, sample_n,
                         out.stats.llm_seconds, out.stats.cpu_seconds);
    }
  }
  // Grouping / classification.
  {
    OpArgs args{{"by", corpus_->category_kind()}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("GroupBy", PhysicalImpl::kLlmGroupBy, args,
                                doc_input, ctx));
    cost_model_.Record("GroupBy", PhysicalImpl::kLlmGroupBy, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    cost_model_.Record("Classify", PhysicalImpl::kLlmClassify, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds,
                       out.stats.llm_dollars);
    setup_llm_seconds_ += out.stats.llm_seconds;
  }
  {
    OpArgs args{{"by", corpus_->category_kind()}};
    UNIFY_ASSIGN_OR_RETURN(
        OpOutput out, ExecuteOp("GroupBy", PhysicalImpl::kRuleGroupBy, args,
                                doc_input, ctx));
    cost_model_.Record("GroupBy", PhysicalImpl::kRuleGroupBy, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
    cost_model_.Record("Classify", PhysicalImpl::kRuleClassify, sample_n,
                       out.stats.llm_seconds, out.stats.cpu_seconds);
  }
  return Status::OK();
}

ResolvedQueryOptions QueryRequest::Overrides::ResolveAgainst(
    const UnifyOptions& defaults) const {
  ResolvedQueryOptions r;
  r.objective = objective.value_or(defaults.objective);
  r.physical_mode = physical_mode.value_or(defaults.physical_mode);
  r.collect_trace = collect_trace.value_or(defaults.collect_trace);
  r.max_intra_op_parallelism = std::max(
      1, max_intra_op_parallelism.value_or(
             defaults.exec.max_intra_op_parallelism));
  r.graceful_degradation =
      graceful_degradation.value_or(defaults.graceful_degradation);
  r.retry_budget_seconds =
      retry_budget_seconds.value_or(defaults.default_retry_budget_seconds);
  r.use_llm_cache = use_llm_cache.value_or(defaults.cache.enabled);
  r.reoptimize = reoptimize.value_or(defaults.exec.reoptimize);
  r.reoptimize_qerror_threshold = reoptimize_qerror_threshold.value_or(
      defaults.exec.reoptimize_qerror_threshold);
  r.max_reoptimizations = std::max(
      0, max_reoptimizations.value_or(defaults.exec.max_reoptimizations));
  return r;
}

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kAdmission:
      return "admission";
    case QueryPhase::kPlanning:
      return "planning";
    case QueryPhase::kOptimization:
      return "optimization";
    case QueryPhase::kExecution:
      return "execution";
    case QueryPhase::kDegraded:
      return "degraded";
    case QueryPhase::kComplete:
      return "complete";
  }
  return "unknown";
}

QueryResult UnifySystem::Answer(const std::string& query) const {
  QueryRequest request;
  request.text = query;
  return Answer(request);
}

QueryResult UnifySystem::Answer(const QueryRequest& request) const {
  return AnswerInternal(request, /*shared_pool=*/nullptr, /*trace=*/nullptr,
                        kNoSpan);
}

QueryResult UnifySystem::AnswerInternal(const QueryRequest& request,
                                        exec::VirtualLlmPool* shared_pool,
                                        std::shared_ptr<Trace> trace,
                                        SpanId parent) const {
  return QueryPipeline(*this, request, shared_pool, std::move(trace), parent)
      .Run();
}

}  // namespace unify::core
