#ifndef UNIFY_CORE_RUNTIME_UNIFY_H_
#define UNIFY_CORE_RUNTIME_UNIFY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/logical/operator_matcher.h"
#include "core/logical/plan_generator.h"
#include "core/operators/custom_ops.h"
#include "core/operators/operator_def.h"
#include "core/physical/cost_model.h"
#include "core/physical/optimizer.h"
#include "core/physical/numeric_stats.h"
#include "core/physical/sce.h"
#include "core/runtime/executor.h"
#include "core/runtime/query.h"
#include "corpus/corpus.h"
#include "embedding/hashed_embedder.h"
#include "index/hnsw_index.h"
#include "llm/fault_client.h"
#include "llm/llm_client.h"
#include "llm/resilient_client.h"
#include "llm/shared_cache.h"
#include "llm/tracing_client.h"

namespace unify::core {

class UnifyService;

/// Configuration of a UnifySystem instance. Defaults follow the paper's
/// hyper-parameters (Section VII-A): k = 5 candidate operators, n_c = 3
/// candidate plans, τ = 0.75, 4 LLM servers, HNSW indexing, 1% SCE
/// samples.
struct UnifyOptions {
  PlanGenerator::Options plan;
  SceOptions sce;
  PhysicalMode physical_mode = PhysicalMode::kFull;
  OptimizeObjective objective = OptimizeObjective::kTime;
  /// Reuse cardinality estimates for repeated predicates across queries.
  bool reuse_sce_across_queries = false;
  PlanExecutor::Options exec;
  /// User-registered operators (Section IV-B3); may be null. Must outlive
  /// the system.
  const CustomOpRegistry* custom_ops = nullptr;
  int llm_batch_size = 16;
  size_t embed_dim = 64;
  uint64_t seed = 17;
  /// Historical predicates used to learn the importance function and to
  /// calibrate the cost model during Setup().
  int history_size = 32;
  /// Run cost-model calibration micro-executions during Setup().
  bool calibrate = true;
  double index_candidate_factor = 9.0;
  /// Calibration-testing knob forwarded to
  /// OptimizerOptions::card_est_scale: every semantic cardinality
  /// estimate is multiplied by this factor (clamped to the corpus size).
  /// 1 = faithful estimates (exact pass-through); anything else emulates
  /// a systematically skewed estimator — the scenario mid-query
  /// re-optimization (UnifyOptions::exec.reoptimize,
  /// docs/replanning.md) exists to repair.
  double card_est_scale = 1.0;
  /// Record a query-lifecycle trace for every Answer() call (attached to
  /// QueryResult::trace). Negligible overhead; disable for pure
  /// throughput benchmarking.
  bool collect_trace = true;
  /// Feed measured execution costs back into the cost model after each
  /// query (running calibration). Disable to make plan choice independent
  /// of the order in which earlier queries ran — the setting under which
  /// concurrent serving is byte-identical to a sequential replay.
  bool cost_feedback = true;
  /// Deterministic fault injection on the LLM path (docs/resilience.md).
  /// All rates default to 0 = pass-through; injection is always disabled
  /// during Setup() so calibration stays fault-free.
  llm::FaultInjectionOptions faults;
  /// Retry / hedge / circuit-breaker policies of the resilience decorator
  /// that sits between the (possibly faulty) client and the tracer.
  llm::ResilienceOptions resilience;
  /// Default virtual seconds of retry overhead (backoff sleeps + retry
  /// attempts) a query may spend recovering from transient LLM faults,
  /// when the request sets neither `retry_budget_seconds` nor a deadline.
  double default_retry_budget_seconds = 120.0;
  /// When a transient LLM failure survives retries and the executor's
  /// fallback strategies, finish with a partial answer and
  /// QueryPhase::kDegraded instead of failing (overridable per request).
  bool graceful_degradation = false;
  /// The shared cross-query LLM answer cache (docs/caching.md): sharded
  /// bounded LRU + singleflight coalescing over per-document completions.
  /// `cache.enabled` defaults to false (opt-in, overridable per request
  /// via QueryRequest::Overrides::use_llm_cache).
  llm::SharedLlmCacheOptions cache;
};

/// The top-level system (paper Figure 1): offline preprocessing
/// (embedding + HNSW indexing of documents, operator-representation
/// indexing, cost calibration, importance-function learning), the planning
/// engine (logical + physical), and the execution module.
///
/// After Setup(), Answer() is const and safe to call from multiple
/// threads: planning/optimization keep their state on the caller's stack,
/// the SCE cache and cost model are mutex-guarded, and the per-query RNG
/// streams are derived from stable content hashes, so concurrent calls
/// produce byte-identical answers to a sequential run (with cost_feedback
/// off; see docs/api.md). For a managed worker pool with admission
/// control and a shared virtual server pool, wrap the system in a
/// UnifyService.
class UnifySystem {
 public:
  /// `corpus` and `llm` must outlive the system.
  UnifySystem(const corpus::Corpus* corpus, llm::LlmClient* llm,
              UnifyOptions options);

  /// Offline preprocessing (Section III-A). Must be called once (from one
  /// thread) before Answer().
  Status Setup();

  /// The request/response types of the public query API (see
  /// core/runtime/query.h). The aliases keep the historical spellings
  /// UnifySystem::QueryResult valid.
  using Request = core::QueryRequest;
  using Result = core::QueryResult;
  using QueryResult = core::QueryResult;

  /// Answers one analytics query end to end, honoring the request's
  /// per-query overrides (objective, physical mode, tracing, deadline).
  QueryResult Answer(const QueryRequest& request) const;

  /// Convenience overload: a request with default options.
  QueryResult Answer(const std::string& query) const;

  // --- component access (read-only) ---
  const CardinalityEstimator& estimator() const { return *estimator_; }
  const CostModel& cost_model() const { return cost_model_; }
  const OperatorRegistry& registry() const { return registry_; }
  const OperatorMatcher& matcher() const { return *matcher_; }
  const embedding::Embedder& doc_embedder() const { return *doc_embedder_; }
  const index::HnswIndex& doc_index() const { return *doc_index_; }
  const std::vector<embedding::Vec>& doc_vecs() const { return doc_vecs_; }
  /// One-off virtual cost of Setup() (indexing + calibration LLM calls).
  double setup_llm_seconds() const { return setup_llm_seconds_; }

  /// The fault injector in the client stack (null before Setup()). Its
  /// `set_rate_scale()` is the runtime kill switch the shell's `\faults`
  /// command flips; fault_stats() feeds the same command's report.
  llm::FaultInjectingLlmClient* fault_injector() const {
    return fault_llm_.get();
  }
  /// The resilience decorator (null before Setup()): retry/hedge/breaker
  /// statistics for the shell and tests.
  const llm::ResilientLlmClient* resilient_client() const {
    return resilient_llm_.get();
  }
  /// The shared cross-query answer cache (null before Setup()). One
  /// instance per system, so every query served through this system —
  /// concurrent or not — shares it. stats()/Clear() back the shell's
  /// `\cache` command and UnifyService::Stats.
  llm::SharedLlmCache* llm_cache() const { return cache_.get(); }

  const UnifyOptions& options() const { return options_; }

  /// Mutable access to internal components, for benchmarks, ablation
  /// studies and tests only — nothing here is part of the stable API, and
  /// mutating components concurrently with in-flight queries is not
  /// thread-safe. Production code should configure behavior through
  /// UnifyOptions / QueryRequest instead.
  struct TestingHooks {
    CardinalityEstimator* estimator = nullptr;
    CostModel* cost_model = nullptr;
    llm::TracingLlmClient* llm = nullptr;
  };
  TestingHooks testing_hooks() {
    TestingHooks hooks;
    hooks.estimator = estimator_.get();
    hooks.cost_model = &cost_model_;
    hooks.llm = traced_llm_.get();
    return hooks;
  }

 private:
  friend class UnifyService;
  /// The staged query pipeline (core/runtime/query_pipeline.h) drives
  /// every Answer() call and reads the system's components directly.
  friend class QueryPipeline;

  Status CalibrateCostModel();

  /// Trampoline into QueryPipeline: parse -> optimize -> execute (with
  /// the mid-query replan loop) -> analyze. `shared_pool` non-null
  /// schedules execution streams on a serving session's shared virtual
  /// server pool (times become absolute on its clock); null uses a fresh
  /// private pool. `trace` non-null lets the caller nest the query under
  /// its own spans (`parent`); null creates a trace per the effective
  /// collect_trace.
  QueryResult AnswerInternal(const QueryRequest& request,
                             exec::VirtualLlmPool* shared_pool,
                             std::shared_ptr<Trace> trace,
                             SpanId parent) const;

  const corpus::Corpus* corpus_;
  llm::LlmClient* llm_;
  UnifyOptions options_;
  /// The decorator stack every internal component calls through
  /// (innermost first): llm_ -> fault injection -> resilience
  /// (retry/hedge/breaker) -> shared answer cache -> metering. The cache
  /// sits *above* resilience so only final, retry-survived OK completions
  /// are ever admitted (a malformed or transient-failed result cannot
  /// poison it), and *below* the tracer so hits/coalesces still meter as
  /// zero-cost logical calls. With fault rates 0 and the cache disabled
  /// the extra layers are pure pass-throughs — default behavior is
  /// unchanged.
  std::unique_ptr<llm::FaultInjectingLlmClient> fault_llm_;
  std::unique_ptr<llm::ResilientLlmClient> resilient_llm_;
  std::unique_ptr<llm::SharedLlmCache> cache_;
  std::unique_ptr<llm::SharedCacheLlmClient> cache_llm_;
  std::unique_ptr<llm::TracingLlmClient> traced_llm_;

  OperatorRegistry registry_;
  std::unique_ptr<OperatorMatcher> matcher_;
  std::unique_ptr<embedding::TopicEmbedder> doc_embedder_;
  std::vector<embedding::Vec> doc_vecs_;
  std::unique_ptr<index::HnswIndex> doc_index_;
  /// Mutable: absorbs feedback from const Answer() calls (internally
  /// mutex-guarded).
  mutable CostModel cost_model_;
  NumericStats numeric_stats_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<PlanGenerator> generator_;
  std::unique_ptr<PhysicalOptimizer> optimizer_;
  double setup_llm_seconds_ = 0;
  bool ready_ = false;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_UNIFY_H_
