#ifndef UNIFY_CORE_RUNTIME_UNIFY_H_
#define UNIFY_CORE_RUNTIME_UNIFY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/logical/operator_matcher.h"
#include "core/logical/plan_generator.h"
#include "core/operators/custom_ops.h"
#include "core/operators/operator_def.h"
#include "core/physical/cost_model.h"
#include "core/physical/optimizer.h"
#include "core/physical/numeric_stats.h"
#include "core/physical/sce.h"
#include "core/runtime/executor.h"
#include "corpus/corpus.h"
#include "embedding/hashed_embedder.h"
#include "index/hnsw_index.h"
#include "llm/llm_client.h"
#include "llm/tracing_client.h"

namespace unify::core {

/// Configuration of a UnifySystem instance. Defaults follow the paper's
/// hyper-parameters (Section VII-A): k = 5 candidate operators, n_c = 3
/// candidate plans, τ = 0.75, 4 LLM servers, HNSW indexing, 1% SCE
/// samples.
struct UnifyOptions {
  PlanGenerator::Options plan;
  SceOptions sce;
  PhysicalMode physical_mode = PhysicalMode::kFull;
  OptimizeObjective objective = OptimizeObjective::kTime;
  /// Reuse cardinality estimates for repeated predicates across queries.
  bool reuse_sce_across_queries = false;
  PlanExecutor::Options exec;
  /// User-registered operators (Section IV-B3); may be null. Must outlive
  /// the system.
  const CustomOpRegistry* custom_ops = nullptr;
  int llm_batch_size = 16;
  size_t embed_dim = 64;
  uint64_t seed = 17;
  /// Historical predicates used to learn the importance function and to
  /// calibrate the cost model during Setup().
  int history_size = 32;
  /// Run cost-model calibration micro-executions during Setup().
  bool calibrate = true;
  double index_candidate_factor = 9.0;
  /// Record a query-lifecycle trace for every Answer() call (attached to
  /// QueryResult::trace). Negligible overhead; disable for pure
  /// throughput benchmarking.
  bool collect_trace = true;
};

/// The top-level system (paper Figure 1): offline preprocessing
/// (embedding + HNSW indexing of documents, operator-representation
/// indexing, cost calibration, importance-function learning), the planning
/// engine (logical + physical), and the execution module.
class UnifySystem {
 public:
  /// `corpus` and `llm` must outlive the system.
  UnifySystem(const corpus::Corpus* corpus, llm::LlmClient* llm,
              UnifyOptions options);

  /// Offline preprocessing (Section III-A). Must be called once before
  /// Answer().
  Status Setup();

  struct QueryResult {
    Status status = Status::OK();
    corpus::Answer answer;
    /// Planning time: logical plan generation + physical optimization
    /// (including SCE sampling), sequential LLM virtual time.
    double plan_seconds = 0;
    /// Execution time: plan makespan on the LLM server pool.
    double exec_seconds = 0;
    double total_seconds = 0;
    /// API spend of plan execution (footnote-1 objective accounting).
    double exec_dollars = 0;
    int num_candidate_plans = 0;
    bool used_fallback = false;
    bool adjusted = false;
    std::string plan_debug;
    /// EXPLAIN rendering of the chosen physical plan.
    std::string plan_explain;
    /// Per-operator execution timeline (virtual start/finish + LLM usage).
    std::string timeline;
    /// Query-lifecycle trace (null when UnifyOptions::collect_trace is
    /// false). Render with Trace::ToText() or export with
    /// Trace::ToChromeJson() for chrome://tracing / Perfetto.
    std::shared_ptr<Trace> trace;
    /// Metrics delta of this query: counters show only what this query
    /// consumed; gauges/histograms reflect the post-query state.
    MetricsSnapshot metrics;
  };

  /// Answers one natural-language analytics query end to end.
  QueryResult Answer(const std::string& query);

  // --- component access (benchmarks, ablations, tests) ---
  CardinalityEstimator& estimator() { return *estimator_; }
  CostModel& cost_model() { return cost_model_; }
  const OperatorRegistry& registry() const { return registry_; }
  const OperatorMatcher& matcher() const { return *matcher_; }
  const embedding::Embedder& doc_embedder() const { return *doc_embedder_; }
  const index::HnswIndex& doc_index() const { return *doc_index_; }
  const std::vector<embedding::Vec>& doc_vecs() const { return doc_vecs_; }
  /// One-off virtual cost of Setup() (indexing + calibration LLM calls).
  double setup_llm_seconds() const { return setup_llm_seconds_; }

  const UnifyOptions& options() const { return options_; }

 private:
  Status CalibrateCostModel();

  const corpus::Corpus* corpus_;
  llm::LlmClient* llm_;
  UnifyOptions options_;
  /// Metering decorator around `llm_`; all internal components call
  /// through it so per-PromptType metrics are recorded regardless of the
  /// client implementation.
  std::unique_ptr<llm::TracingLlmClient> traced_llm_;

  OperatorRegistry registry_;
  std::unique_ptr<OperatorMatcher> matcher_;
  std::unique_ptr<embedding::TopicEmbedder> doc_embedder_;
  std::vector<embedding::Vec> doc_vecs_;
  std::unique_ptr<index::HnswIndex> doc_index_;
  CostModel cost_model_;
  NumericStats numeric_stats_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<PlanGenerator> generator_;
  std::unique_ptr<PhysicalOptimizer> optimizer_;
  double setup_llm_seconds_ = 0;
  bool ready_ = false;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_RUNTIME_UNIFY_H_
