#include "core/runtime/service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/telemetry_names.h"

namespace unify::core {

UnifyService::UnifyService(const UnifySystem* system, Options options)
    : system_(system),
      options_(options),
      pool_(std::max(1, system->options().exec.num_servers)),
      workers_(static_cast<size_t>(std::max(1, options.num_workers))) {}

std::future<QueryResult> UnifyService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  auto& metrics = MetricsRegistry::Global();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ >= options_.max_queue_depth) {
      rejected_ += 1;
      metrics.AddCounter(telemetry::kMetricServeRejected);
      QueryResult rejected;
      rejected.status = Status::ResourceExhausted(
          "serving queue full (" + std::to_string(inflight_) + " in flight, "
          "max_queue_depth " + std::to_string(options_.max_queue_depth) +
          ")");
      rejected.phase = QueryPhase::kAdmission;
      rejected.client_tag = request.client_tag;
      promise->set_value(std::move(rejected));
      return future;
    }
    submitted_ += 1;
    inflight_ += 1;
    metrics.AddCounter(telemetry::kMetricServeSubmitted);
    metrics.SetGauge(telemetry::kMetricServeInflight,
                     static_cast<double>(inflight_));
  }

  const auto enqueued = std::chrono::steady_clock::now();
  workers_.Schedule([this, promise, request = std::move(request),
                     enqueued]() mutable {
    const double queue_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    promise->set_value(Serve(request, queue_wall_seconds));
  });
  return future;
}

QueryResult UnifyService::Serve(const QueryRequest& request,
                                double queue_wall_seconds) {
  auto& metrics = MetricsRegistry::Global();
  metrics.Observe(telemetry::kMetricServeQueueWait, queue_wall_seconds);

  QueryRequest effective = request;
  if (effective.deadline_seconds <= 0) {
    effective.deadline_seconds = options_.default_deadline_seconds;
  }
  if (!effective.max_intra_op_parallelism.has_value() &&
      options_.default_max_intra_op_parallelism > 0) {
    effective.max_intra_op_parallelism =
        options_.default_max_intra_op_parallelism;
  }

  // The serve.query span parents the query's own span tree, so a served
  // trace shows the serving layer on top of the usual lifecycle.
  const bool collect_trace =
      effective.collect_trace.value_or(system_->options().collect_trace);
  std::shared_ptr<Trace> trace;
  if (collect_trace) trace = std::make_shared<Trace>();
  QueryResult result;
  {
    // Null-trace ScopedSpan is a no-op, so the flow stays unconditional.
    ScopedSpan serve_span(trace.get(), telemetry::kSpanServeQuery, kNoSpan);
    if (!effective.client_tag.empty()) {
      serve_span.AddAttr("client", effective.client_tag);
    }
    serve_span.AddAttr("queue_wall_seconds", queue_wall_seconds);
    result = system_->AnswerInternal(effective, &pool_, trace,
                                     serve_span.id());
    serve_span.AddAttr("status", result.status.ok()
                                     ? std::string("ok")
                                     : result.status.ToString());
    serve_span.SetVirtualInterval(result.arrival_seconds,
                                  result.completion_seconds);
  }
  result.queue_wall_seconds = queue_wall_seconds;

  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= 1;
    completed_ += 1;
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_ += 1;
      metrics.AddCounter(telemetry::kMetricServeDeadlineExceeded);
    }
    metrics.SetGauge(telemetry::kMetricServeInflight,
                     static_cast<double>(inflight_));
  }
  return result;
}

QueryResult UnifyService::Answer(QueryRequest request) {
  return Submit(std::move(request)).get();
}

QueryResult UnifyService::Answer(const std::string& text) {
  QueryRequest request;
  request.text = text;
  return Answer(std::move(request));
}

UnifyService::Stats UnifyService::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.deadline_exceeded = deadline_exceeded_;
    s.inflight = inflight_;
  }
  s.pool_now = pool_.Now();
  s.pool_busy_seconds = pool_.TotalBusySeconds();
  return s;
}

}  // namespace unify::core
