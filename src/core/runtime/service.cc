#include "core/runtime/service.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry_names.h"

namespace unify::core {

UnifyService::UnifyService(const UnifySystem* system, Options options)
    : system_(system),
      options_(options),
      pool_(std::max(1, system->options().exec.num_servers)),
      recorder_(FlightRecorder::Options{options.flight_recorder_capacity,
                                        options.slow_query_capacity}),
      workers_(static_cast<size_t>(std::max(1, options.num_workers))) {}

std::future<QueryResult> UnifyService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  // The same derivation AnswerInternal uses, so flight-recorder events
  // match the QueryResult's id.
  const uint64_t query_id = request.query_id != 0
                                ? request.query_id
                                : StableHash64(request.text);

  ServeEvent event;
  event.query_id = query_id;
  event.client_tag = request.client_tag;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ >= options_.max_queue_depth) {
      rejected_ += 1;
      MetricAddCounter(telemetry::kMetricServeRejected);
      QueryResult rejected;
      rejected.status = Status::ResourceExhausted(
          "serving queue full (" + std::to_string(inflight_) + " in flight, "
          "max_queue_depth " + std::to_string(options_.max_queue_depth) +
          ")");
      rejected.phase = QueryPhase::kAdmission;
      rejected.client_tag = request.client_tag;
      rejected.query_id = query_id;
      event.kind = ServeEventKind::kReject;
      event.phase = QueryPhaseName(rejected.phase);
      event.detail = rejected.status.message();
      promise->set_value(std::move(rejected));
    } else {
      submitted_ += 1;
      inflight_ += 1;
      MetricAddCounter(telemetry::kMetricServeSubmitted);
      MetricSetGauge(telemetry::kMetricServeInflight,
                     static_cast<double>(inflight_));
      event.kind = ServeEventKind::kAdmit;
    }
  }
  const bool admitted = event.kind == ServeEventKind::kAdmit;
  recorder_.Record(std::move(event));
  if (!admitted) return future;

  const auto enqueued = std::chrono::steady_clock::now();
  workers_.Schedule([this, promise, request = std::move(request),
                     enqueued]() mutable {
    const double queue_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    promise->set_value(Serve(request, queue_wall_seconds));
  });
  return future;
}

QueryResult UnifyService::Serve(const QueryRequest& request,
                                double queue_wall_seconds) {
  MetricObserve(telemetry::kMetricServeQueueWait, queue_wall_seconds);
  {
    ServeEvent start;
    start.kind = ServeEventKind::kStart;
    start.query_id = request.query_id != 0 ? request.query_id
                                           : StableHash64(request.text);
    start.client_tag = request.client_tag;
    start.queue_wall_seconds = queue_wall_seconds;
    recorder_.Record(std::move(start));
  }

  QueryRequest effective = request;
  if (effective.deadline_seconds <= 0) {
    effective.deadline_seconds = options_.default_deadline_seconds;
  }
  if (!effective.overrides.max_intra_op_parallelism.has_value() &&
      options_.default_max_intra_op_parallelism > 0) {
    effective.overrides.max_intra_op_parallelism =
        options_.default_max_intra_op_parallelism;
  }

  // The serve.query span parents the query's own span tree, so a served
  // trace shows the serving layer on top of the usual lifecycle.
  const bool collect_trace = effective.overrides.collect_trace.value_or(
      system_->options().collect_trace);
  std::shared_ptr<Trace> trace;
  if (collect_trace) trace = std::make_shared<Trace>();
  QueryResult result;
  {
    // Null-trace ScopedSpan is a no-op, so the flow stays unconditional.
    ScopedSpan serve_span(trace.get(), telemetry::kSpanServeQuery, kNoSpan);
    if (!effective.client_tag.empty()) {
      serve_span.AddAttr("client", effective.client_tag);
    }
    serve_span.AddAttr("queue_wall_seconds", queue_wall_seconds);
    result = system_->AnswerInternal(effective, &pool_, trace,
                                     serve_span.id());
    serve_span.AddAttr("status", result.status.ok()
                                     ? std::string("ok")
                                     : result.status.ToString());
    serve_span.SetVirtualInterval(result.arrival_seconds,
                                  result.completion_seconds);
  }
  result.queue_wall_seconds = queue_wall_seconds;

  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= 1;
    completed_ += 1;
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_ += 1;
      MetricAddCounter(telemetry::kMetricServeDeadlineExceeded);
    }
    if (result.phase == QueryPhase::kDegraded) {
      degraded_ += 1;
      MetricAddCounter(telemetry::kMetricServeDegraded);
    }
    MetricSetGauge(telemetry::kMetricServeInflight,
                   static_cast<double>(inflight_));
  }

  // Postmortem events: replan and deadline-miss markers first, then the
  // terminal completion event carrying phase + timings.
  ServeEvent completion;
  completion.query_id = result.query_id;
  completion.client_tag = result.client_tag;
  completion.phase = QueryPhaseName(result.phase);
  completion.queue_wall_seconds = queue_wall_seconds;
  completion.plan_seconds = result.plan_seconds;
  completion.exec_seconds = result.exec_seconds;
  completion.total_seconds = result.total_seconds;
  if (result.adjusted || result.used_fallback) {
    MetricAddCounter(telemetry::kMetricServeReplans);
    ServeEvent replan = completion;
    replan.kind = ServeEventKind::kReplan;
    replan.detail = result.adjusted ? "plan adjustment" : "planning fallback";
    recorder_.Record(std::move(replan));
  }
  // One event per mid-query re-optimization (docs/replanning.md), carrying
  // the pipeline's one-line summary of the trigger and the verdict.
  for (const ReplanRecord& rec : result.replans) {
    MetricAddCounter(telemetry::kMetricServeReplans);
    ServeEvent replan = completion;
    replan.kind = ServeEventKind::kReplan;
    replan.detail = rec.detail;
    recorder_.Record(std::move(replan));
  }
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    ServeEvent miss = completion;
    miss.kind = ServeEventKind::kDeadlineMiss;
    miss.detail = result.status.message();
    recorder_.Record(std::move(miss));
  }
  if (result.phase == QueryPhase::kDegraded) {
    ServeEvent degraded = completion;
    degraded.kind = ServeEventKind::kDegraded;
    degraded.detail = result.degraded_detail;
    recorder_.Record(std::move(degraded));
  }
  completion.kind = ServeEventKind::kComplete;
  completion.detail =
      result.status.ok() ? std::string("ok") : result.status.ToString();
  recorder_.Record(std::move(completion));

  SlowQuery slow;
  slow.query_id = result.query_id;
  slow.client_tag = result.client_tag;
  slow.text = request.text;
  slow.total_seconds = result.total_seconds;
  slow.plan_seconds = result.plan_seconds;
  slow.exec_seconds = result.exec_seconds;
  slow.trace = result.trace;
  recorder_.RecordSlow(std::move(slow));
  return result;
}

QueryResult UnifyService::Answer(QueryRequest request) {
  return Submit(std::move(request)).get();
}

QueryResult UnifyService::Answer(const std::string& text) {
  QueryRequest request;
  request.text = text;
  return Answer(std::move(request));
}

UnifyService::Stats UnifyService::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.deadline_exceeded = deadline_exceeded_;
    s.degraded = degraded_;
    s.inflight = inflight_;
  }
  s.pool_now = pool_.Now();
  s.pool_busy_seconds = pool_.TotalBusySeconds();
  if (system_->llm_cache() != nullptr) {
    s.cache = system_->llm_cache()->stats();
  }
  return s;
}

}  // namespace unify::core
