#include "core/runtime/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "common/accuracy.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry_names.h"

namespace unify::core {

UnifyService::UnifyService(const UnifySystem* system, Options options)
    : system_(system),
      options_(options),
      pool_(std::max(1, system->options().exec.num_servers)),
      recorder_(FlightRecorder::Options{options.flight_recorder_capacity,
                                        options.slow_query_capacity}),
      slo_([&options] {
        SloTracker::Options slo;
        slo.latency_objective_seconds = options.slo_latency_seconds;
        slo.target = options.slo_target;
        return slo;
      }()),
      epoch_(std::chrono::steady_clock::now()),
      workers_(static_cast<size_t>(options.scheduler == Scheduler::kFair
                                       ? 1
                                       : std::max(1, options.num_workers))) {
  if (options_.scheduler == Scheduler::kFair) {
    FairScheduler::Options fopts;
    fopts.default_weight = options_.default_tenant_weight;
    fopts.tenant_weights = options_.tenant_weights;
    fopts.per_tenant_queue_depth = options_.per_tenant_queue_depth;
    fopts.per_tenant_max_concurrency = options_.per_tenant_max_concurrency;
    // The serving clock: queue-age shedding compares request deadlines
    // against the shared pool's virtual time, the same clock execution
    // charges deadlines against.
    fopts.now = [this] { return pool_.Now(); };
    sched_ = std::make_unique<FairScheduler>(std::move(fopts));
    const int n = std::max(1, options_.num_workers);
    sched_workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      sched_workers_.emplace_back([this] { SchedulerWorkerLoop(); });
    }
  }
  if (options_.http_port != 0) StartHttpEndpoint();
}

UnifyService::~UnifyService() {
  // Stop the endpoint before any member is destroyed: its handlers read
  // the counters, recorder, ledger, and pool. Stop() joins every
  // in-flight connection. The workers_ destructor then drains queries.
  if (http_ != nullptr) http_->Stop();
  if (sched_ != nullptr) {
    // Drain, don't drop: Dequeue() keeps handing out (or shedding) queued
    // tasks after Shutdown() until the queues empty, so every submitted
    // future resolves before the workers exit.
    sched_->Shutdown();
    for (std::thread& t : sched_workers_) t.join();
  }
}

void UnifyService::SchedulerWorkerLoop() {
  FairScheduler::Task task;
  while (sched_->Dequeue(&task)) {
    task.run();
    sched_->OnComplete(task.tenant);
    // Release the closures (promise, request) before blocking in Dequeue.
    task = FairScheduler::Task();
  }
}

double UnifyService::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::future<QueryResult> UnifyService::Submit(QueryRequest request) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  // The same derivation AnswerInternal uses, so flight-recorder events
  // match the QueryResult's id.
  const uint64_t query_id = request.query_id != 0
                                ? request.query_id
                                : StableHash64(request.text);

  if (sched_ != nullptr) {
    SubmitFair(std::move(promise), std::move(request), query_id);
    return future;
  }

  ServeEvent event;
  event.query_id = query_id;
  event.client_tag = request.client_tag;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ >= options_.max_queue_depth) {
      rejected_ += 1;
      MetricAddCounter(telemetry::kMetricServeRejected);
      // Ledger update under mu_, so stats() (which snapshots counters and
      // tenants in one mu_ section) never sees the reject counted but the
      // tenant map not yet updated (lock-order note in service.h).
      tenant_ledger_.RecordRejection(request.client_tag);
      QueryResult rejected;
      rejected.status = Status::ResourceExhausted(
          "serving queue full (" + std::to_string(inflight_) + " in flight, "
          "max_queue_depth " + std::to_string(options_.max_queue_depth) +
          ")");
      rejected.phase = QueryPhase::kAdmission;
      rejected.client_tag = request.client_tag;
      rejected.query_id = query_id;
      event.kind = ServeEventKind::kReject;
      event.phase = QueryPhaseName(rejected.phase);
      event.detail = rejected.status.message();
      promise->set_value(std::move(rejected));
    } else {
      submitted_ += 1;
      inflight_ += 1;
      MetricAddCounter(telemetry::kMetricServeSubmitted);
      MetricSetGauge(telemetry::kMetricServeInflight,
                     static_cast<double>(inflight_));
      event.kind = ServeEventKind::kAdmit;
    }
  }
  const bool admitted = event.kind == ServeEventKind::kAdmit;
  recorder_.Record(std::move(event));
  if (!admitted) return future;

  const auto enqueued = std::chrono::steady_clock::now();
  workers_.Schedule([this, promise, request = std::move(request),
                     enqueued]() mutable {
    const double queue_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      enqueued)
            .count();
    promise->set_value(Serve(request, queue_wall_seconds));
  });
  return future;
}

void UnifyService::SubmitFair(
    std::shared_ptr<std::promise<QueryResult>> promise, QueryRequest request,
    uint64_t query_id) {
  ServeEvent event;
  event.query_id = query_id;
  event.client_tag = request.client_tag;
  QueryResult failed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ >= options_.max_queue_depth) {
      // Global admission control is unchanged from FIFO mode: the fair
      // scheduler refines it with per-tenant caps but never loosens it.
      rejected_ += 1;
      MetricAddCounter(telemetry::kMetricServeRejected);
      tenant_ledger_.RecordRejection(request.client_tag);
      failed.status = Status::ResourceExhausted(
          "serving queue full (" + std::to_string(inflight_) + " in flight, "
          "max_queue_depth " + std::to_string(options_.max_queue_depth) +
          ")");
      failed.phase = QueryPhase::kAdmission;
      failed.client_tag = request.client_tag;
      failed.query_id = query_id;
      event.kind = ServeEventKind::kReject;
      event.phase = QueryPhaseName(failed.phase);
      event.detail = failed.status.message();
    } else {
      auto req = std::make_shared<QueryRequest>(std::move(request));
      FairScheduler::Task task;
      task.tenant = req->client_tag;
      task.priority =
          req->overrides.priority.value_or(QueryPriority::kNormal);
      task.deadline_seconds = req->deadline_seconds > 0
                                  ? req->deadline_seconds
                                  : options_.default_deadline_seconds;
      task.arrival_seconds = req->arrival_seconds;
      const auto enqueued = std::chrono::steady_clock::now();
      task.run = [this, promise, req, enqueued] {
        const double queue_wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          enqueued)
                .count();
        promise->set_value(Serve(*req, queue_wall_seconds));
      };
      task.shed = [this, promise, req, query_id](double queue_wall_seconds) {
        promise->set_value(ShedResult(*req, query_id, queue_wall_seconds));
      };
      // Enqueue under mu_ (mu_ -> sched.mu_; the scheduler never calls
      // out while holding its lock, so the order cannot invert): the
      // tenant-cap check and the admission counters commit atomically —
      // no rollback path, and stats() sees them move together.
      if (Status st = sched_->Enqueue(std::move(task)); !st.ok()) {
        rejected_ += 1;
        MetricAddCounter(telemetry::kMetricServeRejected);
        tenant_ledger_.RecordRejection(req->client_tag);
        failed.status = std::move(st);
        failed.phase = QueryPhase::kAdmission;
        failed.client_tag = req->client_tag;
        failed.query_id = query_id;
        event.kind = ServeEventKind::kTenantReject;
        event.phase = QueryPhaseName(failed.phase);
        event.detail = failed.status.message();
      } else {
        submitted_ += 1;
        inflight_ += 1;
        MetricAddCounter(telemetry::kMetricServeSubmitted);
        MetricSetGauge(telemetry::kMetricServeInflight,
                       static_cast<double>(inflight_));
        event.kind = ServeEventKind::kAdmit;
      }
    }
  }
  const bool admitted = event.kind == ServeEventKind::kAdmit;
  recorder_.Record(std::move(event));
  if (!admitted) promise->set_value(std::move(failed));
}

QueryResult UnifyService::ShedResult(const QueryRequest& request,
                                     uint64_t query_id,
                                     double queue_wall_seconds) {
  const double deadline = request.deadline_seconds > 0
                              ? request.deadline_seconds
                              : options_.default_deadline_seconds;
  QueryResult result;
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "shed while queued: deadline %gs after virtual arrival %g "
                "already passed before dispatch",
                deadline, request.arrival_seconds);
  result.status = Status::DeadlineExceeded(detail);
  result.phase = QueryPhase::kAdmission;
  result.client_tag = request.client_tag;
  result.query_id = query_id;
  result.queue_wall_seconds = queue_wall_seconds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= 1;
    shed_ += 1;
    MetricSetGauge(telemetry::kMetricServeInflight,
                   static_cast<double>(inflight_));
    // A shed counts for the tenant as a failed query with a deadline
    // miss; it counts in neither completed_ nor deadline_exceeded_ (those
    // are for *served* queries) — stats().shed carries it.
    tenant_ledger_.RecordCompletion(result);
  }

  // A shed is a user-visible failure: it burns SLO error budget exactly
  // like a served failure does.
  const double now_uptime = UptimeSeconds();
  const SloTracker::Outcome slo = slo_.Record(now_uptime, false);
  MetricAddCounter(telemetry::kMetricSloBad);
  MetricSetGauge(telemetry::kMetricSloBurnRateFast, slo.burn_rate_fast);
  MetricSetGauge(telemetry::kMetricSloBurnRateSlow, slo.burn_rate_slow);
  MetricSetGauge(telemetry::kMetricServeUptime, now_uptime);

  ServeEvent shed;
  shed.kind = ServeEventKind::kShed;
  shed.query_id = query_id;
  shed.client_tag = result.client_tag;
  shed.phase = QueryPhaseName(result.phase);
  shed.detail = result.status.message();
  shed.queue_wall_seconds = queue_wall_seconds;
  if (slo.breach_started) {
    char breach_detail[160];
    std::snprintf(breach_detail, sizeof(breach_detail),
                  "burn rate fast %.2f / slow %.2f over threshold %.2f "
                  "(target %g)",
                  slo.burn_rate_fast, slo.burn_rate_slow,
                  slo_.options().breach_burn_rate, slo_.options().target);
    ServeEvent breach = shed;
    breach.kind = ServeEventKind::kSloBreach;
    breach.detail = breach_detail;
    recorder_.Record(std::move(breach));
  }
  recorder_.Record(std::move(shed));
  return result;
}

QueryResult UnifyService::Serve(const QueryRequest& request,
                                double queue_wall_seconds) {
  MetricObserve(telemetry::kMetricServeQueueWait, queue_wall_seconds);
  {
    ServeEvent start;
    start.kind = ServeEventKind::kStart;
    start.query_id = request.query_id != 0 ? request.query_id
                                           : StableHash64(request.text);
    start.client_tag = request.client_tag;
    start.queue_wall_seconds = queue_wall_seconds;
    recorder_.Record(std::move(start));
  }

  QueryRequest effective = request;
  if (effective.deadline_seconds <= 0) {
    effective.deadline_seconds = options_.default_deadline_seconds;
  }
  if (!effective.overrides.max_intra_op_parallelism.has_value() &&
      options_.default_max_intra_op_parallelism > 0) {
    effective.overrides.max_intra_op_parallelism =
        options_.default_max_intra_op_parallelism;
  }

  // The serve.query span parents the query's own span tree, so a served
  // trace shows the serving layer on top of the usual lifecycle.
  const bool collect_trace = effective.overrides.collect_trace.value_or(
      system_->options().collect_trace);
  std::shared_ptr<Trace> trace;
  if (collect_trace) trace = std::make_shared<Trace>();
  QueryResult result;
  {
    // Null-trace ScopedSpan is a no-op, so the flow stays unconditional.
    ScopedSpan serve_span(trace.get(), telemetry::kSpanServeQuery, kNoSpan);
    if (!effective.client_tag.empty()) {
      serve_span.AddAttr("client", effective.client_tag);
    }
    serve_span.AddAttr("queue_wall_seconds", queue_wall_seconds);
    result = system_->AnswerInternal(effective, &pool_, trace,
                                     serve_span.id());
    serve_span.AddAttr("status", result.status.ok()
                                     ? std::string("ok")
                                     : result.status.ToString());
    serve_span.SetVirtualInterval(result.arrival_seconds,
                                  result.completion_seconds);
  }
  result.queue_wall_seconds = queue_wall_seconds;

  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ -= 1;
    completed_ += 1;
    if (result.status.code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_ += 1;
      MetricAddCounter(telemetry::kMetricServeDeadlineExceeded);
    }
    if (result.phase == QueryPhase::kDegraded) {
      degraded_ += 1;
      MetricAddCounter(telemetry::kMetricServeDegraded);
    }
    MetricSetGauge(telemetry::kMetricServeInflight,
                   static_cast<double>(inflight_));
    // Per-tenant attribution (exact, from the query's own metrics) in the
    // same mu_ section as the counters it must agree with: stats() also
    // samples both under mu_, so a snapshot never shows a completion the
    // tenant map has not absorbed yet (lock-order note in service.h).
    tenant_ledger_.RecordCompletion(result);
  }

  // The SLO ledger runs outside any per-query metrics sink, so the
  // serve.slo.* telemetry never leaks into QueryResult::metrics.
  const double now_uptime = UptimeSeconds();
  const bool slo_good = slo_.IsGood(result.status.ok(), result.total_seconds);
  const SloTracker::Outcome slo = slo_.Record(now_uptime, slo_good);
  MetricAddCounter(slo_good ? telemetry::kMetricSloGood
                            : telemetry::kMetricSloBad);
  MetricSetGauge(telemetry::kMetricSloBurnRateFast, slo.burn_rate_fast);
  MetricSetGauge(telemetry::kMetricSloBurnRateSlow, slo.burn_rate_slow);
  MetricSetGauge(telemetry::kMetricServeUptime, now_uptime);

  // Postmortem events: SLO-breach, replan and deadline-miss markers
  // first, then the terminal completion event carrying phase + timings.
  ServeEvent completion;
  completion.query_id = result.query_id;
  completion.client_tag = result.client_tag;
  completion.phase = QueryPhaseName(result.phase);
  completion.queue_wall_seconds = queue_wall_seconds;
  completion.plan_seconds = result.plan_seconds;
  completion.exec_seconds = result.exec_seconds;
  completion.total_seconds = result.total_seconds;
  if (slo.breach_started) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "burn rate fast %.2f / slow %.2f over threshold %.2f "
                  "(target %g)",
                  slo.burn_rate_fast, slo.burn_rate_slow,
                  slo_.options().breach_burn_rate, slo_.options().target);
    ServeEvent breach = completion;
    breach.kind = ServeEventKind::kSloBreach;
    breach.detail = detail;
    recorder_.Record(std::move(breach));
  }
  if (result.adjusted || result.used_fallback) {
    MetricAddCounter(telemetry::kMetricServeReplans);
    ServeEvent replan = completion;
    replan.kind = ServeEventKind::kReplan;
    replan.detail = result.adjusted ? "plan adjustment" : "planning fallback";
    recorder_.Record(std::move(replan));
  }
  // One event per mid-query re-optimization (docs/replanning.md), carrying
  // the pipeline's one-line summary of the trigger and the verdict.
  for (const ReplanRecord& rec : result.replans) {
    MetricAddCounter(telemetry::kMetricServeReplans);
    ServeEvent replan = completion;
    replan.kind = ServeEventKind::kReplan;
    replan.detail = rec.detail;
    recorder_.Record(std::move(replan));
  }
  if (result.status.code() == StatusCode::kDeadlineExceeded) {
    ServeEvent miss = completion;
    miss.kind = ServeEventKind::kDeadlineMiss;
    miss.detail = result.status.message();
    recorder_.Record(std::move(miss));
  }
  if (result.phase == QueryPhase::kDegraded) {
    ServeEvent degraded = completion;
    degraded.kind = ServeEventKind::kDegraded;
    degraded.detail = result.degraded_detail;
    recorder_.Record(std::move(degraded));
  }
  completion.kind = ServeEventKind::kComplete;
  completion.detail =
      result.status.ok() ? std::string("ok") : result.status.ToString();
  recorder_.Record(std::move(completion));

  SlowQuery slow;
  slow.query_id = result.query_id;
  slow.client_tag = result.client_tag;
  slow.text = request.text;
  slow.total_seconds = result.total_seconds;
  slow.plan_seconds = result.plan_seconds;
  slow.exec_seconds = result.exec_seconds;
  slow.trace = result.trace;
  recorder_.RecordSlow(std::move(slow));
  return result;
}

QueryResult UnifyService::Answer(QueryRequest request) {
  return Submit(std::move(request)).get();
}

QueryResult UnifyService::Answer(const std::string& text) {
  QueryRequest request;
  request.text = text;
  return Answer(std::move(request));
}

UnifyService::Stats UnifyService::stats() const {
  Stats s;
  {
    // One mu_ section for the counters AND the tenant/scheduler state
    // they must agree with — the update paths (Submit, Serve, ShedResult)
    // mutate both under the same lock, so this snapshot is consistent.
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.deadline_exceeded = deadline_exceeded_;
    s.degraded = degraded_;
    s.shed = shed_;
    s.inflight = inflight_;
    s.tenants = tenant_ledger_.snapshot();
    if (sched_ != nullptr) {
      s.fair_scheduler = true;
      s.sched = sched_->stats();
    }
  }
  s.uptime_seconds = UptimeSeconds();
  MetricSetGauge(telemetry::kMetricServeUptime, s.uptime_seconds);
  s.pool_now = pool_.Now();
  s.pool_busy_seconds = pool_.TotalBusySeconds();
  if (system_->llm_cache() != nullptr) {
    s.cache = system_->llm_cache()->stats();
  }
  s.slo = slo_.state(s.uptime_seconds);
  return s;
}

// --- embedded HTTP endpoint ------------------------------------------------

void UnifyService::StartHttpEndpoint() {
  http_ = std::make_unique<serving::HttpServer>();
  http_->Handle(serving::kRouteMetrics,
                [this](const serving::HttpRequest&) {
                  return HandleMetrics();
                });
  http_->Handle(serving::kRouteHealthz, [](const serving::HttpRequest&) {
    serving::HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  http_->Handle(serving::kRouteReadyz, [this](const serving::HttpRequest&) {
    return HandleReadyz();
  });
  http_->Handle(serving::kRouteStatusz,
                [this](const serving::HttpRequest&) {
                  return HandleStatusz();
                });
  http_->Handle(serving::kRouteEvents, [this](const serving::HttpRequest&) {
    serving::HttpResponse response;
    response.content_type = "application/x-ndjson";
    response.body = recorder_.ToJsonl();
    return response;
  });
  http_->Handle(serving::kRouteSlow, [this](const serving::HttpRequest&) {
    serving::HttpResponse response;
    response.content_type = "application/x-ndjson";
    response.body = recorder_.SlowQueriesToJsonl();
    return response;
  });
  http_->Handle(serving::kRouteAccuracy,
                [](const serving::HttpRequest&) {
                  serving::HttpResponse response;
                  response.body = AccuracyLedger::Global().ToText();
                  return response;
                });
  http_->Handle(serving::kRouteTenants,
                [this](const serving::HttpRequest&) {
                  serving::HttpResponse response;
                  response.content_type = "application/json";
                  if (sched_ == nullptr) {
                    response.body = tenant_ledger_.ToJson();
                    return response;
                  }
                  // Fair mode wraps the ledger with live queue state:
                  // {"usage": <ledger>, "sched": {tenant: {...}}}.
                  std::string usage = tenant_ledger_.ToJson();
                  while (!usage.empty() && usage.back() == '\n') {
                    usage.pop_back();
                  }
                  const FairScheduler::Stats st = sched_->stats();
                  char buf[64];
                  std::ostringstream os;
                  os << "{\"usage\":" << usage << ",\"sched\":{";
                  bool first = true;
                  for (const auto& [tenant, t] : st.tenants) {
                    if (!first) os << ",";
                    first = false;
                    std::snprintf(buf, sizeof(buf), "%.9g", t.weight);
                    os << "\"" << JsonEscape(tenant)
                       << "\":{\"weight\":" << buf
                       << ",\"queued\":" << t.queued
                       << ",\"running\":" << t.running
                       << ",\"dispatched\":" << t.dispatched
                       << ",\"shed\":" << t.sheds
                       << ",\"rejected\":" << t.rejected << "}";
                  }
                  os << "}}\n";
                  response.body = os.str();
                  return response;
                });

  serving::HttpServer::Options hopts;
  hopts.port = options_.http_port < 0 ? 0 : options_.http_port;
  if (Status st = http_->Start(hopts); !st.ok()) {
    UNIFY_LOG(Warning) << "HTTP endpoint disabled: " << st;
    http_.reset();
  }
}

serving::HttpResponse UnifyService::HandleMetrics() const {
  MetricSetGauge(telemetry::kMetricServeUptime, UptimeSeconds());
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  tenant_ledger_.AnnotateSnapshot(&snap);
  serving::HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = snap.ToPrometheusText();
  return response;
}

serving::HttpResponse UnifyService::HandleReadyz() const {
  int64_t inflight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight = inflight_;
  }
  serving::HttpResponse response;
  if (inflight < options_.max_queue_depth) {
    response.body = "ready\n";
    return response;
  }
  // Tell the load balancer *why* the replica is not ready, not just that
  // it is not: it is at admission-control pressure with `serve.inflight`
  // requests queued or running against the configured depth.
  response.status = 503;
  response.content_type = "application/json";
  std::ostringstream os;
  os << "{\"ready\":false,\"reason\":\"admission-control pressure\","
     << "\"serve.inflight\":" << inflight
     << ",\"queue_depth\":" << inflight
     << ",\"max_queue_depth\":" << options_.max_queue_depth << "}\n";
  response.body = os.str();
  return response;
}

serving::HttpResponse UnifyService::HandleStatusz() const {
  const Stats s = stats();
  const int num_servers = std::max(1, system_->options().exec.num_servers);
  const double occupancy =
      s.pool_now > 0 ? s.pool_busy_seconds / (num_servers * s.pool_now) : 0;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  std::ostringstream os;
  os << "{\"uptime_seconds\":" << num(s.uptime_seconds)
     << ",\"stats\":{\"submitted\":" << s.submitted
     << ",\"rejected\":" << s.rejected << ",\"completed\":" << s.completed
     << ",\"deadline_exceeded\":" << s.deadline_exceeded
     << ",\"degraded\":" << s.degraded << ",\"inflight\":" << s.inflight
     << "},\"pool\":{\"now\":" << num(s.pool_now)
     << ",\"busy_seconds\":" << num(s.pool_busy_seconds)
     << ",\"num_servers\":" << num_servers
     << ",\"occupancy\":" << num(occupancy)
     << "},\"cache\":{\"entries\":" << s.cache.entries
     << ",\"bytes\":" << s.cache.bytes
     << ",\"item_hits\":" << s.cache.item_hits
     << ",\"item_misses\":" << s.cache.item_misses
     << ",\"coalesced\":" << s.cache.coalesced
     << ",\"evictions\":" << s.cache.evictions
     << ",\"saved_dollars\":" << num(s.cache.saved_dollars)
     << "},\"slo\":{\"good\":" << s.slo.good << ",\"bad\":" << s.slo.bad
     << ",\"burn_rate_fast\":" << num(s.slo.burn_rate_fast)
     << ",\"burn_rate_slow\":" << num(s.slo.burn_rate_slow)
     << ",\"in_breach\":" << (s.slo.in_breach ? "true" : "false")
     << ",\"latency_objective_seconds\":"
     << num(slo_.options().latency_objective_seconds)
     << ",\"target\":" << num(slo_.options().target)
     << "},\"tenants\":" << s.tenants.size()
     << ",\"workers\":" << options_.num_workers
     << ",\"max_queue_depth\":" << options_.max_queue_depth;
  if (s.fair_scheduler) {
    os << ",\"sched\":{\"queued\":" << s.sched.queued
       << ",\"running\":" << s.sched.running
       << ",\"dispatched\":" << s.sched.dispatched
       << ",\"shed\":" << s.sched.sheds
       << ",\"tenant_rejects\":" << s.sched.tenant_rejects
       << ",\"wheel_rotations\":" << s.sched.wheel_rotations
       << ",\"queued_by_class\":{\"batch\":" << s.sched.queued_by_class[0]
       << ",\"normal\":" << s.sched.queued_by_class[1]
       << ",\"interactive\":" << s.sched.queued_by_class[2] << "}}";
  }
  os << "}\n";
  serving::HttpResponse response;
  response.content_type = "application/json";
  response.body = os.str();
  return response;
}

}  // namespace unify::core
