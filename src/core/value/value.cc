#include "core/value/value.h"

#include <sstream>

#include "common/string_util.h"

namespace unify::core {

size_t Value::Cardinality() const {
  struct Visitor {
    size_t operator()(const std::monostate&) const { return 0; }
    size_t operator()(const DocList& docs) const { return docs.size(); }
    size_t operator()(const GroupedDocs& g) const {
      size_t n = 0;
      for (const auto& [label, docs] : g.groups) n += docs.size();
      return n;
    }
    size_t operator()(double) const { return 1; }
    size_t operator()(const GroupedNumbers& g) const {
      return g.values.size();
    }
    size_t operator()(const NumberList& v) const { return v.values.size(); }
    size_t operator()(const GroupedNumberLists& g) const {
      size_t n = 0;
      for (const auto& [label, values] : g.groups) n += values.values.size();
      return n;
    }
    size_t operator()(const std::string&) const { return 1; }
    size_t operator()(const TextList& v) const { return v.size(); }
  };
  return std::visit(Visitor{}, rep_);
}

corpus::Answer Value::ToAnswer() const {
  struct Visitor {
    corpus::Answer operator()(const std::monostate&) const {
      return corpus::Answer::None();
    }
    corpus::Answer operator()(const DocList& docs) const {
      return corpus::Answer::Number(static_cast<double>(docs.size()));
    }
    corpus::Answer operator()(const GroupedDocs&) const {
      return corpus::Answer::None();
    }
    corpus::Answer operator()(double v) const {
      return corpus::Answer::Number(v);
    }
    corpus::Answer operator()(const GroupedNumbers&) const {
      return corpus::Answer::None();
    }
    corpus::Answer operator()(const NumberList&) const {
      return corpus::Answer::None();
    }
    corpus::Answer operator()(const GroupedNumberLists&) const {
      return corpus::Answer::None();
    }
    corpus::Answer operator()(const std::string& s) const {
      return corpus::Answer::Text(s);
    }
    corpus::Answer operator()(const TextList& v) const {
      return corpus::Answer::List(v);
    }
  };
  return std::visit(Visitor{}, rep_);
}

std::string Value::ToString() const {
  struct Visitor {
    std::string operator()(const std::monostate&) const { return "<none>"; }
    std::string operator()(const DocList& docs) const {
      std::string out("docs(");
      out += std::to_string(docs.size());
      out += ")";
      return out;
    }
    std::string operator()(const GroupedDocs& g) const {
      std::string out("groups(");
      out += std::to_string(g.groups.size());
      out += ")";
      return out;
    }
    std::string operator()(double v) const { return FormatDouble(v, 4); }
    std::string operator()(const GroupedNumbers& g) const {
      std::ostringstream os;
      os << "{";
      for (size_t i = 0; i < g.values.size(); ++i) {
        if (i) os << ", ";
        os << g.values[i].first << ": " << FormatDouble(g.values[i].second, 3);
      }
      os << "}";
      return os.str();
    }
    std::string operator()(const NumberList& v) const {
      std::string out("values(");
      out += std::to_string(v.values.size());
      out += ")";
      return out;
    }
    std::string operator()(const GroupedNumberLists& g) const {
      std::string out("grouped-values(");
      out += std::to_string(g.groups.size());
      out += ")";
      return out;
    }
    std::string operator()(const std::string& s) const { return s; }
    std::string operator()(const TextList& v) const {
      std::string out("[");
      out += StrJoin(v, ", ");
      out += "]";
      return out;
    }
  };
  return std::visit(Visitor{}, rep_);
}

}  // namespace unify::core
