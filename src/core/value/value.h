#ifndef UNIFY_CORE_VALUE_VALUE_H_
#define UNIFY_CORE_VALUE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "corpus/answer.h"

namespace unify::core {

/// A list of document ids (references into the corpus).
using DocList = std::vector<uint64_t>;

/// Documents partitioned into labeled groups (the output of GroupBy).
/// Downstream operators broadcast per group: Filter keeps the labels and
/// filters each group's documents; Count maps each group to a number; etc.
struct GroupedDocs {
  std::vector<std::pair<std::string, DocList>> groups;
  bool operator==(const GroupedDocs&) const = default;
};

/// Extracted numeric values (the output of Extract on a document list).
struct NumberList {
  std::vector<double> values;
  bool operator==(const NumberList&) const = default;
};

/// Per-group extracted numeric values.
struct GroupedNumberLists {
  std::vector<std::pair<std::string, NumberList>> groups;
  bool operator==(const GroupedNumberLists&) const = default;
};

/// Per-group scalars (counts, aggregates, computed ratios).
struct GroupedNumbers {
  std::vector<std::pair<std::string, double>> values;
  bool operator==(const GroupedNumbers&) const = default;
};

/// A list of strings (document titles from TopK, generated lists).
using TextList = std::vector<std::string>;

/// The runtime value of a plan variable.
class Value {
 public:
  using Rep = std::variant<std::monostate, DocList, GroupedDocs, double,
                           GroupedNumbers, NumberList, GroupedNumberLists,
                           std::string, TextList>;

  Value() = default;
  Value(Rep rep) : rep_(std::move(rep)) {}  // NOLINT: value wrapper

  static Value Docs(DocList docs) { return Value(Rep(std::move(docs))); }
  static Value Number(double v) { return Value(Rep(v)); }
  static Value Text(std::string s) { return Value(Rep(std::move(s))); }

  bool is_none() const { return std::holds_alternative<std::monostate>(rep_); }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(rep_);
  }
  template <typename T>
  const T& get() const {
    return std::get<T>(rep_);
  }

  const Rep& rep() const { return rep_; }

  /// The cardinality relevant for cost accounting: number of documents /
  /// values / groups carried.
  size_t Cardinality() const;

  /// Converts a terminal value into an Answer (numbers, labels, lists).
  /// Document lists convert via their size; grouped values are not
  /// terminal and yield kNone.
  corpus::Answer ToAnswer() const;

  /// Debug rendering.
  std::string ToString() const;

 private:
  Rep rep_;
};

}  // namespace unify::core

#endif  // UNIFY_CORE_VALUE_VALUE_H_
