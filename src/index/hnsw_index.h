#ifndef UNIFY_INDEX_HNSW_INDEX_H_
#define UNIFY_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "index/vector_index.h"

namespace unify::index {

/// Hierarchical Navigable Small World graph index (Malkov & Yashunin,
/// TPAMI 2020 — reference [25] of the paper), implemented from scratch.
///
/// Structure: every element is inserted at a random maximum layer drawn
/// from a geometric distribution; each layer stores an undirected proximity
/// graph. Queries greedily descend from the top layer's entry point, then
/// run a best-first beam search (width `ef_search`) on layer 0.
///
/// This backs the IndexScan physical operator (Section IV-B3): semantic
/// filters can probe only the documents nearest to the query embedding
/// instead of scanning the whole corpus.
class HnswIndex : public VectorIndex {
 public:
  struct Options {
    /// Max neighbors per node on layers > 0; layer 0 allows 2*M.
    size_t M = 16;
    /// Beam width during construction.
    size_t ef_construction = 200;
    /// Beam width during search (can be overridden per query).
    size_t ef_search = 64;
    /// Level-assignment RNG seed.
    uint64_t seed = 42;
    /// Use the heuristic neighbor-selection rule (Algorithm 4 in the HNSW
    /// paper) instead of simply keeping the M closest candidates.
    bool select_heuristic = true;
  };

  explicit HnswIndex(Options options);

  Status Add(uint64_t id, const embedding::Vec& v) override;
  std::vector<SearchResult> Search(const embedding::Vec& query,
                                   size_t k) const override;
  size_t size() const override { return nodes_.size(); }

  /// Search with an explicit beam width (recall/latency knob).
  std::vector<SearchResult> SearchEf(const embedding::Vec& query, size_t k,
                                     size_t ef) const;

  /// Highest occupied layer (-1 when empty). Exposed for tests.
  int max_layer() const { return max_layer_; }

  /// Total number of directed edges across all layers. Exposed for tests.
  size_t EdgeCount() const;

 private:
  struct Node {
    uint64_t id;
    embedding::Vec vec;
    /// neighbors[l] = internal indices adjacent at layer l (l <= level).
    std::vector<std::vector<uint32_t>> neighbors;
  };

  /// Candidate in the beam, ordered by distance.
  struct Candidate {
    float dist;
    uint32_t idx;
  };

  float Dist(const embedding::Vec& a, const embedding::Vec& b) const {
    return embedding::L2Distance(a, b);
  }

  /// Draws the insertion level: floor(-ln(U) * (1/ln(M))).
  int RandomLevel();

  /// Greedy hill-climb toward `query` on `layer`, starting at `start`.
  uint32_t GreedyClosest(const embedding::Vec& query, uint32_t start,
                         int layer) const;

  /// Best-first beam search on `layer`; returns up to `ef` closest nodes as
  /// candidates sorted ascending by distance.
  std::vector<Candidate> SearchLayer(const embedding::Vec& query,
                                     uint32_t entry, size_t ef,
                                     int layer) const;

  /// Selects up to `m` neighbors from `candidates` (ascending by distance).
  /// With `select_heuristic`, a candidate is kept only if it is closer to
  /// the base point than to every already-kept neighbor, which preserves
  /// graph navigability in clustered data.
  std::vector<uint32_t> SelectNeighbors(const embedding::Vec& base,
                                        std::vector<Candidate> candidates,
                                        size_t m) const;

  /// Caps `node`'s adjacency at `layer` to the allowed degree.
  void ShrinkNeighbors(uint32_t node, int layer);

  size_t MaxDegree(int layer) const {
    return layer == 0 ? 2 * options_.M : options_.M;
  }

  Options options_;
  double level_mult_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::unordered_map<uint64_t, uint32_t> id_to_idx_;
  int max_layer_ = -1;
  uint32_t entry_point_ = 0;
};

}  // namespace unify::index

#endif  // UNIFY_INDEX_HNSW_INDEX_H_
