#ifndef UNIFY_INDEX_VECTOR_INDEX_H_
#define UNIFY_INDEX_VECTOR_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "embedding/vector_math.h"

namespace unify::index {

/// One nearest-neighbor search hit.
struct SearchResult {
  /// Caller-assigned item id (document id).
  uint64_t id = 0;
  /// L2 distance to the query. Embeddings are unit vectors, so this is
  /// monotone in cosine distance.
  float distance = 0.0f;

  bool operator==(const SearchResult&) const = default;
};

/// Approximate/exact nearest-neighbor index over embedding vectors.
/// Implementations: LinearIndex (exact brute force) and HnswIndex (the
/// paper's HNSW [25], reimplemented from scratch).
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Adds a vector under `id`. Ids must be unique.
  virtual Status Add(uint64_t id, const embedding::Vec& v) = 0;

  /// Returns up to `k` nearest items to `query`, sorted by ascending
  /// distance.
  virtual std::vector<SearchResult> Search(const embedding::Vec& query,
                                           size_t k) const = 0;

  /// Number of indexed vectors.
  virtual size_t size() const = 0;
};

}  // namespace unify::index

#endif  // UNIFY_INDEX_VECTOR_INDEX_H_
