#ifndef UNIFY_INDEX_LINEAR_INDEX_H_
#define UNIFY_INDEX_LINEAR_INDEX_H_

#include <unordered_set>

#include "index/vector_index.h"

namespace unify::index {

/// Exact nearest-neighbor search by brute force. O(N·dim) per query;
/// the baseline LinearScan physical operator and the recall reference for
/// HnswIndex tests.
class LinearIndex : public VectorIndex {
 public:
  LinearIndex() = default;

  Status Add(uint64_t id, const embedding::Vec& v) override;
  std::vector<SearchResult> Search(const embedding::Vec& query,
                                   size_t k) const override;
  size_t size() const override { return ids_.size(); }

  /// All stored (id, vector) pairs, in insertion order.
  const std::vector<uint64_t>& ids() const { return ids_; }
  const std::vector<embedding::Vec>& vectors() const { return vectors_; }

 private:
  std::vector<uint64_t> ids_;
  std::vector<embedding::Vec> vectors_;
  std::unordered_set<uint64_t> seen_;
};

}  // namespace unify::index

#endif  // UNIFY_INDEX_LINEAR_INDEX_H_
