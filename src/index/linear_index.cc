#include "index/linear_index.h"

#include <algorithm>

namespace unify::index {

Status LinearIndex::Add(uint64_t id, const embedding::Vec& v) {
  if (!vectors_.empty() && v.size() != vectors_.front().size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  if (!seen_.insert(id).second) {
    return Status::AlreadyExists("duplicate id in LinearIndex");
  }
  ids_.push_back(id);
  vectors_.push_back(v);
  return Status::OK();
}

std::vector<SearchResult> LinearIndex::Search(const embedding::Vec& query,
                                              size_t k) const {
  std::vector<SearchResult> all;
  all.reserve(ids_.size());
  for (size_t i = 0; i < ids_.size(); ++i) {
    all.push_back({ids_[i], embedding::L2Distance(query, vectors_[i])});
  }
  size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + take, all.end(),
                    [](const SearchResult& a, const SearchResult& b) {
                      if (a.distance != b.distance)
                        return a.distance < b.distance;
                      return a.id < b.id;
                    });
  all.resize(take);
  return all;
}

}  // namespace unify::index
