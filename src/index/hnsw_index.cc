#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace unify::index {

namespace {

/// Min-heap comparator on distance (closest on top).
struct CloserOnTop {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first > b.first;
  }
};

/// Max-heap comparator on distance (farthest on top).
struct FartherOnTop {
  bool operator()(const std::pair<float, uint32_t>& a,
                  const std::pair<float, uint32_t>& b) const {
    return a.first < b.first;
  }
};

}  // namespace

HnswIndex::HnswIndex(Options options)
    : options_(options),
      level_mult_(1.0 / std::log(static_cast<double>(
                            std::max<size_t>(2, options.M)))),
      rng_(options.seed) {
  UNIFY_CHECK(options_.M >= 2);
}

int HnswIndex::RandomLevel() {
  double u = rng_.NextDouble();
  while (u <= 1e-12) u = rng_.NextDouble();
  return static_cast<int>(-std::log(u) * level_mult_);
}

Status HnswIndex::Add(uint64_t id, const embedding::Vec& v) {
  if (!nodes_.empty() && v.size() != nodes_.front().vec.size()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  if (id_to_idx_.count(id) > 0) {
    return Status::AlreadyExists("duplicate id in HnswIndex");
  }

  int level = RandomLevel();
  Node node;
  node.id = id;
  node.vec = v;
  node.neighbors.resize(level + 1);
  uint32_t idx = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  id_to_idx_[id] = idx;

  if (idx == 0) {
    entry_point_ = 0;
    max_layer_ = level;
    return Status::OK();
  }

  const embedding::Vec& q = nodes_[idx].vec;
  uint32_t cur = entry_point_;

  // Phase 1: greedy descent through layers above the new node's level.
  for (int layer = max_layer_; layer > level; --layer) {
    cur = GreedyClosest(q, cur, layer);
  }

  // Phase 2: beam search + linking on layers min(level, max_layer_)..0.
  for (int layer = std::min(level, max_layer_); layer >= 0; --layer) {
    auto candidates = SearchLayer(q, cur, options_.ef_construction, layer);
    if (!candidates.empty()) cur = candidates.front().idx;
    auto selected = SelectNeighbors(q, candidates, options_.M);
    nodes_[idx].neighbors[layer] = selected;
    for (uint32_t nb : selected) {
      nodes_[nb].neighbors[layer].push_back(idx);
      if (nodes_[nb].neighbors[layer].size() > MaxDegree(layer)) {
        ShrinkNeighbors(nb, layer);
      }
    }
  }

  if (level > max_layer_) {
    max_layer_ = level;
    entry_point_ = idx;
  }
  return Status::OK();
}

uint32_t HnswIndex::GreedyClosest(const embedding::Vec& query, uint32_t start,
                                  int layer) const {
  uint32_t cur = start;
  float cur_dist = Dist(query, nodes_[cur].vec);
  bool improved = true;
  while (improved) {
    improved = false;
    if (layer >= static_cast<int>(nodes_[cur].neighbors.size())) break;
    for (uint32_t nb : nodes_[cur].neighbors[layer]) {
      float d = Dist(query, nodes_[nb].vec);
      if (d < cur_dist) {
        cur_dist = d;
        cur = nb;
        improved = true;
      }
    }
  }
  return cur;
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(
    const embedding::Vec& query, uint32_t entry, size_t ef, int layer) const {
  std::vector<bool> visited(nodes_.size(), false);
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, CloserOnTop>
      frontier;
  std::priority_queue<std::pair<float, uint32_t>,
                      std::vector<std::pair<float, uint32_t>>, FartherOnTop>
      best;

  float d0 = Dist(query, nodes_[entry].vec);
  frontier.push({d0, entry});
  best.push({d0, entry});
  visited[entry] = true;

  while (!frontier.empty()) {
    auto [d, cur] = frontier.top();
    frontier.pop();
    if (!best.empty() && d > best.top().first && best.size() >= ef) break;
    if (layer < static_cast<int>(nodes_[cur].neighbors.size())) {
      for (uint32_t nb : nodes_[cur].neighbors[layer]) {
        if (visited[nb]) continue;
        visited[nb] = true;
        float dn = Dist(query, nodes_[nb].vec);
        if (best.size() < ef || dn < best.top().first) {
          frontier.push({dn, nb});
          best.push({dn, nb});
          if (best.size() > ef) best.pop();
        }
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back({best.top().first, best.top().second});
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // ascending by distance
  return out;
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(
    const embedding::Vec& base, std::vector<Candidate> candidates,
    size_t m) const {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist < b.dist;
            });
  if (!options_.select_heuristic) {
    std::vector<uint32_t> out;
    for (const auto& c : candidates) {
      out.push_back(c.idx);
      if (out.size() >= m) break;
    }
    return out;
  }
  // Heuristic (HNSW Algorithm 4): keep a candidate only if it is closer to
  // the base than to all already-selected neighbors; this spreads edges
  // across clusters, preserving navigability.
  std::vector<uint32_t> selected;
  std::vector<Candidate> discarded;
  for (const auto& c : candidates) {
    if (selected.size() >= m) break;
    bool good = true;
    for (uint32_t s : selected) {
      if (Dist(nodes_[c.idx].vec, nodes_[s].vec) < c.dist) {
        good = false;
        break;
      }
    }
    if (good) {
      selected.push_back(c.idx);
    } else {
      discarded.push_back(c);
    }
  }
  // Backfill with the closest discarded candidates if under-full.
  for (const auto& c : discarded) {
    if (selected.size() >= m) break;
    selected.push_back(c.idx);
  }
  return selected;
}

void HnswIndex::ShrinkNeighbors(uint32_t node, int layer) {
  auto& adj = nodes_[node].neighbors[layer];
  std::vector<Candidate> candidates;
  candidates.reserve(adj.size());
  for (uint32_t nb : adj) {
    candidates.push_back({Dist(nodes_[node].vec, nodes_[nb].vec), nb});
  }
  adj = SelectNeighbors(nodes_[node].vec, std::move(candidates),
                        MaxDegree(layer));
}

std::vector<SearchResult> HnswIndex::Search(const embedding::Vec& query,
                                            size_t k) const {
  return SearchEf(query, k, std::max(options_.ef_search, k));
}

std::vector<SearchResult> HnswIndex::SearchEf(const embedding::Vec& query,
                                              size_t k, size_t ef) const {
  if (nodes_.empty()) return {};
  uint32_t cur = entry_point_;
  for (int layer = max_layer_; layer > 0; --layer) {
    cur = GreedyClosest(query, cur, layer);
  }
  auto candidates = SearchLayer(query, cur, std::max(ef, k), 0);
  std::vector<SearchResult> out;
  out.reserve(std::min(k, candidates.size()));
  for (const auto& c : candidates) {
    if (out.size() >= k) break;
    out.push_back({nodes_[c.idx].id, c.dist});
  }
  return out;
}

size_t HnswIndex::EdgeCount() const {
  size_t n = 0;
  for (const auto& node : nodes_) {
    for (const auto& layer : node.neighbors) n += layer.size();
  }
  return n;
}

}  // namespace unify::index
