#ifndef UNIFY_UNIFY_API_H_
#define UNIFY_UNIFY_API_H_

/// The umbrella header of Unify's stable public surface. Applications,
/// examples and benchmarks should include this single header; everything
/// it re-exports is documented in docs/api.md and kept
/// source-compatible across versions:
///
///   * corpus loading and answers    (corpus/corpus.h, corpus/answer.h)
///   * LLM client interfaces         (llm/llm_client.h, llm/sim_llm.h,
///                                    llm/caching_client.h)
///   * the shared answer cache       (llm/shared_cache.h — sharded
///                                    bounded LRU + in-flight coalescing
///                                    across concurrent queries,
///                                    see docs/caching.md)
///   * fault injection + resilience  (llm/fault_client.h,
///                                    llm/resilient_client.h — retry /
///                                    hedge / circuit-breaker policies,
///                                    see docs/resilience.md)
///   * the system + options          (core/runtime/unify.h)
///   * the query request/response    (core/runtime/query.h)
///     — every per-query knob lives in QueryRequest::Overrides and
///       resolves against UnifyOptions through one helper
///       (Overrides::ResolveAgainst); answers are byte-identical at
///       every max_intra_op_parallelism setting, see docs/api.md
///   * the concurrent serving layer  (core/runtime/service.h)
///   * custom operator registration  (core/operators/custom_ops.h)
///   * status/error taxonomy         (common/status.h)
///   * observability: metrics/traces (common/metrics.h, common/trace.h,
///                                    common/telemetry_names.h)
///
/// Headers NOT re-exported here — the planner, optimizer, SCE, executor,
/// index and embedding internals — are implementation detail: they stay
/// includable for ablation studies and tests but may change between
/// versions without notice.

#include "common/metrics.h"
#include "common/status.h"
#include "common/telemetry_names.h"
#include "common/trace.h"
#include "core/operators/custom_ops.h"
#include "core/runtime/query.h"
#include "core/runtime/service.h"
#include "core/runtime/unify.h"
#include "corpus/answer.h"
#include "corpus/corpus.h"
#include "corpus/dataset_profile.h"
#include "llm/caching_client.h"
#include "llm/fault_client.h"
#include "llm/llm_client.h"
#include "llm/resilient_client.h"
#include "llm/shared_cache.h"
#include "llm/sim_llm.h"

namespace unify {

/// The stable spellings, lifted to the top-level namespace so application
/// code reads `unify::UnifySystem` rather than `unify::core::UnifySystem`.
using core::QueryPhase;
using core::QueryPhaseName;
using core::QueryRequest;
using core::QueryResult;
using core::ResolvedQueryOptions;
using core::UnifyOptions;
using core::UnifyService;
using core::UnifySystem;
using core::OptimizeObjective;
using core::PhysicalMode;
/// Shared-LLM-cache state (SharedLlmCache::stats(), UnifyService::Stats).
using llm::CacheStats;

}  // namespace unify

#endif  // UNIFY_UNIFY_API_H_
