#ifndef UNIFY_EXEC_SCHEDULE_H_
#define UNIFY_EXEC_SCHEDULE_H_

#include <vector>

#include "common/status.h"
#include "exec/dag.h"
#include "exec/virtual_pool.h"

namespace unify::exec {

/// Virtual-time cost of one plan node.
struct NodeCost {
  /// CPU-side (pre-programmed) work: runs on an uncontended resource.
  double cpu_seconds = 0;
  /// LLM-side work: a sequential stream of batched calls occupying one
  /// simulated server.
  double llm_seconds = 0;
  /// Morsel-driven intra-operator parallelism: when non-empty AND
  /// `max_parallelism` > 1, the node's LLM work is issued as these
  /// independent partition streams (they should sum to `llm_seconds`)
  /// instead of one sequential stream, with at most `max_parallelism`
  /// partitions in flight at once. Empty = unpartitioned (the default).
  std::vector<double> llm_partitions;
  int max_parallelism = 1;
};

/// A computed execution timeline. All times are absolute virtual seconds
/// on the pool the schedule ran against (for a fresh pool and base 0 they
/// coincide with query-relative times).
struct ScheduleResult {
  std::vector<double> start;
  std::vector<double> finish;
  /// When the whole plan completes (absolute).
  double makespan = 0;
};

/// Computes the virtual-time timeline of executing `dag` with per-node
/// `costs` on the LLM servers of `pool`, with every root node becoming
/// ready at absolute time `base`. The pool may be shared with other
/// concurrent schedules (a UnifyService serving session), in which case
/// the returned intervals include cross-query queueing for servers.
///
/// `sequential` = the paper's Unify–noLO ablation (Section VII-D): nodes
/// run strictly one after another in topological order. Otherwise nodes
/// are dispatched as soon as their dependencies finish (the paper's
/// "Parallel Topological Execution", Section III-C), with LLM streams
/// competing for servers.
StatusOr<ScheduleResult> ScheduleDag(const Dag& dag,
                                     const std::vector<NodeCost>& costs,
                                     VirtualLlmPool* pool, bool sequential,
                                     double base = 0);

/// Convenience overload: schedules on a fresh private pool of
/// `num_servers` servers starting at time 0 (the standalone,
/// one-query-at-a-time model).
StatusOr<ScheduleResult> ScheduleDag(const Dag& dag,
                                     const std::vector<NodeCost>& costs,
                                     int num_servers, bool sequential);

}  // namespace unify::exec

#endif  // UNIFY_EXEC_SCHEDULE_H_
