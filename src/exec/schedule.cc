#include "exec/schedule.h"

#include <algorithm>
#include <queue>

namespace unify::exec {

StatusOr<ScheduleResult> ScheduleDag(const Dag& dag,
                                     const std::vector<NodeCost>& costs,
                                     VirtualLlmPool* pool, bool sequential,
                                     double base) {
  if (pool == nullptr) {
    return Status::InvalidArgument("ScheduleDag: null pool");
  }
  if (costs.size() != dag.size()) {
    return Status::InvalidArgument("costs/DAG size mismatch");
  }
  UNIFY_ASSIGN_OR_RETURN(std::vector<int> order, dag.TopologicalOrder());

  // Finish time of node `u` whose LLM work becomes ready at `at`:
  // partitioned nodes fan their morsels across servers, everything else
  // runs as one sequential stream.
  auto finish_of = [&](int u, double at) {
    const NodeCost& c = costs[u];
    if (c.max_parallelism > 1 && c.llm_partitions.size() > 1) {
      return pool->ScheduleParallelStream(at, c.llm_partitions,
                                          c.max_parallelism);
    }
    return pool->ScheduleStream(at, c.llm_seconds);
  };

  ScheduleResult result;
  result.start.assign(dag.size(), base);
  result.finish.assign(dag.size(), base);

  if (sequential) {
    double clock = base;
    for (int u : order) {
      double ready = clock;
      for (int p : dag.parents(u)) ready = std::max(ready, result.finish[p]);
      result.start[u] = ready;
      result.finish[u] = finish_of(u, ready + costs[u].cpu_seconds);
      clock = result.finish[u];
    }
    result.makespan = clock;
    return result;
  }

  // List scheduling: dispatch each node the moment its dependencies
  // complete, earliest-ready first.
  struct Ready {
    double time;
    int node;
    bool operator>(const Ready& other) const {
      if (time != other.time) return time > other.time;
      return node > other.node;
    }
  };
  std::vector<int> pending(dag.size(), 0);
  std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> queue;
  for (size_t u = 0; u < dag.size(); ++u) {
    pending[u] = static_cast<int>(dag.parents(static_cast<int>(u)).size());
    if (pending[u] == 0) queue.push({base, static_cast<int>(u)});
  }
  double makespan = base;
  size_t done = 0;
  while (!queue.empty()) {
    auto [ready, u] = queue.top();
    queue.pop();
    result.start[u] = ready;
    result.finish[u] = finish_of(u, ready + costs[u].cpu_seconds);
    makespan = std::max(makespan, result.finish[u]);
    ++done;
    for (int v : dag.children(u)) {
      if (--pending[v] == 0) {
        double v_ready = base;
        for (int p : dag.parents(v)) {
          v_ready = std::max(v_ready, result.finish[p]);
        }
        queue.push({v_ready, v});
      }
    }
  }
  if (done != dag.size()) {
    return Status::FailedPrecondition("cycle detected in plan DAG");
  }
  result.makespan = makespan;
  return result;
}

StatusOr<ScheduleResult> ScheduleDag(const Dag& dag,
                                     const std::vector<NodeCost>& costs,
                                     int num_servers, bool sequential) {
  VirtualLlmPool pool(num_servers);
  return ScheduleDag(dag, costs, &pool, sequential, /*base=*/0);
}

}  // namespace unify::exec
