#include "exec/dag.h"

#include <algorithm>
#include <deque>

namespace unify::exec {

int Dag::AddNode() {
  children_.emplace_back();
  parents_.emplace_back();
  return static_cast<int>(children_.size()) - 1;
}

Status Dag::AddEdge(int u, int v) {
  if (u < 0 || v < 0 || u >= static_cast<int>(size()) ||
      v >= static_cast<int>(size())) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) return Status::InvalidArgument("self edge");
  // Idempotent.
  for (int c : children_[u]) {
    if (c == v) return Status::OK();
  }
  children_[u].push_back(v);
  parents_[v].push_back(u);
  return Status::OK();
}

bool Dag::Reaches(int u, int v) const {
  if (u == v) return true;
  std::vector<bool> seen(size(), false);
  std::deque<int> frontier{u};
  seen[u] = true;
  while (!frontier.empty()) {
    int cur = frontier.front();
    frontier.pop_front();
    for (int c : children_[cur]) {
      if (c == v) return true;
      if (!seen[c]) {
        seen[c] = true;
        frontier.push_back(c);
      }
    }
  }
  return false;
}

StatusOr<std::vector<int>> Dag::TopologicalOrder() const {
  std::vector<int> indegree(size(), 0);
  for (size_t u = 0; u < size(); ++u) {
    for (int v : children_[u]) ++indegree[v];
  }
  std::deque<int> ready;
  for (size_t u = 0; u < size(); ++u) {
    if (indegree[u] == 0) ready.push_back(static_cast<int>(u));
  }
  std::vector<int> order;
  order.reserve(size());
  while (!ready.empty()) {
    int u = ready.front();
    ready.pop_front();
    order.push_back(u);
    for (int v : children_[u]) {
      if (--indegree[v] == 0) ready.push_back(v);
    }
  }
  if (order.size() != size()) {
    return Status::FailedPrecondition("cycle detected in plan DAG");
  }
  return order;
}

size_t Dag::Depth() const {
  auto order = TopologicalOrder();
  if (!order.ok()) return 0;
  std::vector<size_t> depth(size(), 1);
  size_t best = size() == 0 ? 0 : 1;
  for (int u : *order) {
    for (int v : children_[u]) {
      depth[v] = std::max(depth[v], depth[u] + 1);
      best = std::max(best, depth[v]);
    }
  }
  return best;
}

}  // namespace unify::exec
