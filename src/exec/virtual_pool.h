#ifndef UNIFY_EXEC_VIRTUAL_POOL_H_
#define UNIFY_EXEC_VIRTUAL_POOL_H_

#include <mutex>
#include <vector>

namespace unify::exec {

/// Virtual-time model of the paper's LLM serving setup ("Execution is
/// parallelized when possible across 4 local Llamas", Section VII-A).
///
/// Each operator issues its (batched) LLM calls as one sequential stream;
/// a stream occupies a single server from start to finish, and independent
/// operators run concurrently on different servers. Greedy
/// earliest-available-server assignment — the classic list-scheduling
/// machine model.
///
/// A pool is shared by every query in flight on a UnifyService: operator
/// streams from concurrent queries compete for the same servers, so a
/// query's reported execution time includes cross-query queueing. All
/// methods are thread-safe, and the pool's virtual clock is monotonic —
/// there is no reset; standalone callers simply construct a fresh pool per
/// schedule.
class VirtualLlmPool {
 public:
  explicit VirtualLlmPool(int num_servers);

  /// Schedules a stream of `total_seconds` of back-to-back calls that
  /// becomes ready at absolute virtual time `ready`. Returns its
  /// completion time. Thread-safe.
  double ScheduleStream(double ready, double total_seconds);

  /// Schedules one operator's work as independent partition streams
  /// (morsel-driven intra-operator parallelism): every entry of
  /// `partition_seconds` is its own stream, all ready at `ready`, with at
  /// most `max_parallelism` of them in flight at once. Each in-flight
  /// partition occupies one server, so a node can keep several servers
  /// busy while still queueing fairly against other concurrent schedules
  /// (the whole assignment happens under one lock). Returns the completion
  /// time of the last partition. With `max_parallelism` <= 1 or a single
  /// partition this degenerates to ScheduleStream over the summed
  /// duration — exactly the sequential behavior. Thread-safe.
  double ScheduleParallelStream(double ready,
                                const std::vector<double>& partition_seconds,
                                int max_parallelism);

  int num_servers() const { return static_cast<int>(free_at_.size()); }

  /// The pool's monotonic virtual clock: the earliest absolute time at
  /// which a newly arriving stream could start (the least-loaded server's
  /// free time). Never decreases, because ScheduleStream only pushes
  /// server free times forward. New queries admitted to a serving session
  /// use this as their virtual arrival time.
  double Now() const;

  /// The time the last-busy server frees up.
  double MaxBusyTime() const;

  /// Total stream-seconds ever scheduled (for occupancy accounting).
  double TotalBusySeconds() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> free_at_;
  double busy_seconds_ = 0;
};

}  // namespace unify::exec

#endif  // UNIFY_EXEC_VIRTUAL_POOL_H_
