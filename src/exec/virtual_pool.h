#ifndef UNIFY_EXEC_VIRTUAL_POOL_H_
#define UNIFY_EXEC_VIRTUAL_POOL_H_

#include <vector>

namespace unify::exec {

/// Virtual-time model of the paper's LLM serving setup ("Execution is
/// parallelized when possible across 4 local Llamas", Section VII-A).
///
/// Each operator issues its (batched) LLM calls as one sequential stream;
/// a stream occupies a single server from start to finish, and independent
/// operators run concurrently on different servers. Greedy
/// earliest-available-server assignment — the classic list-scheduling
/// machine model.
class VirtualLlmPool {
 public:
  explicit VirtualLlmPool(int num_servers);

  /// Schedules a stream of `total_seconds` of back-to-back calls that
  /// becomes ready at time `ready`. Returns its completion time.
  double ScheduleStream(double ready, double total_seconds);

  /// All servers idle again; time resets to 0.
  void Reset();

  int num_servers() const { return static_cast<int>(free_at_.size()); }

  /// The time the last-busy server frees up.
  double MaxBusyTime() const;

 private:
  std::vector<double> free_at_;
};

}  // namespace unify::exec

#endif  // UNIFY_EXEC_VIRTUAL_POOL_H_
