#include "exec/dag_runner.h"

#include <condition_variable>
#include <mutex>

namespace unify::exec {

Status RunDag(const Dag& dag, ThreadPool* pool,
              const std::function<Status(int)>& run) {
  if (pool == nullptr) {
    UNIFY_ASSIGN_OR_RETURN(std::vector<int> order, dag.TopologicalOrder());
    for (int u : order) {
      UNIFY_RETURN_IF_ERROR(run(u));
    }
    return Status::OK();
  }

  // Validate acyclicity up front so we cannot deadlock below.
  UNIFY_RETURN_IF_ERROR(dag.TopologicalOrder().status());

  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    std::vector<int> pending;
    size_t remaining;
    Status first_error;
    bool failed = false;
  };
  auto state = std::make_shared<State>();
  state->pending.resize(dag.size());
  state->remaining = dag.size();
  for (size_t u = 0; u < dag.size(); ++u) {
    state->pending[u] = static_cast<int>(dag.parents(static_cast<int>(u)).size());
  }
  if (dag.size() == 0) return Status::OK();

  // Recursive dispatch: when a node finishes, schedule newly-unblocked
  // children.
  std::function<void(int)> execute = [&, state](int u) {
    Status st = state->failed ? Status::Aborted("upstream failure") : run(u);
    std::vector<int> unblocked;
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (!st.ok() && !state->failed) {
        state->failed = true;
        state->first_error = st;
      }
      for (int v : dag.children(u)) {
        if (--state->pending[v] == 0) unblocked.push_back(v);
      }
      if (--state->remaining == 0) state->done_cv.notify_all();
    }
    for (int v : unblocked) {
      pool->Schedule([&execute, v] { execute(v); });
    }
  };

  std::vector<int> roots;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    for (size_t u = 0; u < dag.size(); ++u) {
      if (state->pending[u] == 0) roots.push_back(static_cast<int>(u));
    }
  }
  for (int u : roots) {
    pool->Schedule([&execute, u] { execute(u); });
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->remaining == 0; });
    return state->failed ? state->first_error : Status::OK();
  }
}

}  // namespace unify::exec
