#include "exec/virtual_pool.h"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/logging.h"

namespace unify::exec {

VirtualLlmPool::VirtualLlmPool(int num_servers) {
  UNIFY_CHECK(num_servers >= 1);
  free_at_.assign(static_cast<size_t>(num_servers), 0.0);
}

double VirtualLlmPool::ScheduleStream(double ready, double total_seconds) {
  if (total_seconds <= 0) return ready;
  std::lock_guard<std::mutex> lock(mu_);
  // Earliest-available server; if one is already idle at `ready`, no wait.
  size_t best = 0;
  for (size_t s = 1; s < free_at_.size(); ++s) {
    if (free_at_[s] < free_at_[best]) best = s;
  }
  double start = std::max(free_at_[best], ready);
  double end = start + total_seconds;
  free_at_[best] = end;
  busy_seconds_ += total_seconds;
  return end;
}

double VirtualLlmPool::ScheduleParallelStream(
    double ready, const std::vector<double>& partition_seconds,
    int max_parallelism) {
  // Degenerate cases reduce to the single-stream path so parallelism 1
  // reproduces the sequential model exactly (one stream, one server).
  double total = 0;
  int live = 0;
  for (double s : partition_seconds) {
    if (s > 0) {
      total += s;
      ++live;
    }
  }
  if (live == 0) return ready;
  if (max_parallelism <= 1 || live == 1) return ScheduleStream(ready, total);

  std::lock_guard<std::mutex> lock(mu_);
  // Morsel lanes: at most `max_parallelism` partitions in flight at once.
  // Partitions are dispatched in order; each waits for a free lane (its
  // own node's concurrency budget) AND a free server (the shared pool).
  // Everything is assigned under one lock so a node's partitions land as
  // one atomic unit relative to other concurrent schedules.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      lane_free;
  double end_max = ready;
  for (double s : partition_seconds) {
    if (s <= 0) continue;
    double at = ready;
    if (static_cast<int>(lane_free.size()) >= max_parallelism) {
      at = std::max(at, lane_free.top());
      lane_free.pop();
    }
    size_t best = 0;
    for (size_t i = 1; i < free_at_.size(); ++i) {
      if (free_at_[i] < free_at_[best]) best = i;
    }
    double start = std::max(free_at_[best], at);
    double end = start + s;
    free_at_[best] = end;
    busy_seconds_ += s;
    lane_free.push(end);
    end_max = std::max(end_max, end);
  }
  return end_max;
}

double VirtualLlmPool::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *std::min_element(free_at_.begin(), free_at_.end());
}

double VirtualLlmPool::MaxBusyTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *std::max_element(free_at_.begin(), free_at_.end());
}

double VirtualLlmPool::TotalBusySeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_seconds_;
}

}  // namespace unify::exec
