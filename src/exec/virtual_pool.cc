#include "exec/virtual_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace unify::exec {

VirtualLlmPool::VirtualLlmPool(int num_servers) {
  UNIFY_CHECK(num_servers >= 1);
  free_at_.assign(static_cast<size_t>(num_servers), 0.0);
}

double VirtualLlmPool::ScheduleStream(double ready, double total_seconds) {
  if (total_seconds <= 0) return ready;
  std::lock_guard<std::mutex> lock(mu_);
  // Earliest-available server; if one is already idle at `ready`, no wait.
  size_t best = 0;
  for (size_t s = 1; s < free_at_.size(); ++s) {
    if (free_at_[s] < free_at_[best]) best = s;
  }
  double start = std::max(free_at_[best], ready);
  double end = start + total_seconds;
  free_at_[best] = end;
  busy_seconds_ += total_seconds;
  return end;
}

double VirtualLlmPool::Now() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *std::min_element(free_at_.begin(), free_at_.end());
}

double VirtualLlmPool::MaxBusyTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  return *std::max_element(free_at_.begin(), free_at_.end());
}

double VirtualLlmPool::TotalBusySeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_seconds_;
}

}  // namespace unify::exec
