#ifndef UNIFY_EXEC_DAG_RUNNER_H_
#define UNIFY_EXEC_DAG_RUNNER_H_

#include <functional>

#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/dag.h"

namespace unify::exec {

/// Executes `run(node)` for every node of `dag`, starting each node only
/// after all its parents succeeded — the real (wall-clock) counterpart of
/// the paper's parallel topological execution.
///
/// With a thread pool, independent nodes run concurrently; `run` must be
/// thread-safe across independent nodes. Without one (`pool == nullptr`),
/// nodes run sequentially in topological order.
///
/// If any node returns an error, no new nodes are started and the first
/// error is returned (already-running nodes finish).
Status RunDag(const Dag& dag, ThreadPool* pool,
              const std::function<Status(int)>& run);

}  // namespace unify::exec

#endif  // UNIFY_EXEC_DAG_RUNNER_H_
