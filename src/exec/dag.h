#ifndef UNIFY_EXEC_DAG_H_
#define UNIFY_EXEC_DAG_H_

#include <vector>

#include "common/status.h"

namespace unify::exec {

/// A directed acyclic graph over integer node ids [0, size). Edges point
/// from prerequisite to dependent (u must finish before v starts).
class Dag {
 public:
  Dag() = default;

  /// Adds a node; returns its id.
  int AddNode();

  /// Adds edge u -> v (u is a prerequisite of v). Requires valid ids.
  Status AddEdge(int u, int v);

  size_t size() const { return children_.size(); }
  const std::vector<int>& children(int u) const { return children_[u]; }
  const std::vector<int>& parents(int v) const { return parents_[v]; }

  /// True iff v transitively depends on u.
  bool Reaches(int u, int v) const;

  /// Kahn topological order; error if a cycle exists.
  StatusOr<std::vector<int>> TopologicalOrder() const;

  /// The length of the longest path (in nodes); 0 for an empty DAG. A
  /// fully sequential plan over n nodes has depth n; more parallelism
  /// means smaller depth.
  size_t Depth() const;

 private:
  std::vector<std::vector<int>> children_;
  std::vector<std::vector<int>> parents_;
};

}  // namespace unify::exec

#endif  // UNIFY_EXEC_DAG_H_
