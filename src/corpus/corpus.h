#ifndef UNIFY_CORPUS_CORPUS_H_
#define UNIFY_CORPUS_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "corpus/dataset_profile.h"
#include "corpus/document.h"
#include "corpus/knowledge.h"

namespace unify::corpus {

/// A synthesized unstructured-document collection plus the knowledge base
/// describing its vocabulary.
class Corpus {
 public:
  Corpus(DatasetProfile profile, std::vector<Document> docs);

  const std::string& name() const { return profile_.name; }
  const std::string& entity() const { return profile_.entity; }
  const std::string& category_kind() const { return profile_.category_kind; }
  const DatasetProfile& profile() const { return profile_; }
  const KnowledgeBase& knowledge() const { return kb_; }

  const std::vector<Document>& docs() const { return docs_; }
  size_t size() const { return docs_.size(); }
  const Document& doc(uint64_t id) const { return docs_.at(id); }

 private:
  DatasetProfile profile_;
  KnowledgeBase kb_;
  std::vector<Document> docs_;
};

/// Synthesizes a corpus for `profile`. Deterministic in `seed`.
///
/// Each document gets latent attributes drawn from the profile's
/// distributions and prose rendering those attributes:
///   * a title ("Post 917"),
///   * a category sentence — explicit keyword (80%) or an implicit cue,
///   * one sentence per latent tag — explicit tag word (70%) or implicit,
///   * a generic filler sentence,
///   * the numeric attributes in regular surface patterns the
///     pre-programmed Extract operator can parse.
Corpus GenerateCorpus(const DatasetProfile& profile, uint64_t seed);

/// Tokens and aliases for building the dataset's TopicEmbedder: category
/// keywords map to canonical category/group tokens, tag phrases map to tag
/// tokens (see DESIGN.md — this models the synonymy a trained embedder
/// captures).
struct EmbeddingSpec {
  std::vector<std::string> topic_tokens;
  std::vector<std::pair<std::string, std::vector<std::string>>> aliases;
};
EmbeddingSpec BuildEmbeddingSpec(const DatasetProfile& profile);

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_CORPUS_H_
