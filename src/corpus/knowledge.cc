#include "corpus/knowledge.h"

#include "common/string_util.h"

namespace unify::corpus {

KnowledgeBase::KnowledgeBase(const DatasetProfile& profile)
    : profile_(profile) {
  for (const auto& cat : profile.categories) {
    categories_.push_back(cat.name);
    SemanticPredicate pred;
    pred.kind = SemanticPredicate::Kind::kCategory;
    pred.categories.insert(cat.name);
    phrase_map_[AsciiToLower(cat.name)] = pred;
  }
  for (const auto& group : profile.groups) {
    groups_.push_back(group.name);
    SemanticPredicate pred;
    pred.kind = SemanticPredicate::Kind::kCategory;
    for (const auto& m : group.members) pred.categories.insert(m);
    phrase_map_[AsciiToLower(group.name)] = pred;
  }
  for (const auto& tag : profile.tags) {
    tags_.push_back(tag.name);
    SemanticPredicate pred;
    pred.kind = SemanticPredicate::Kind::kTag;
    pred.tag = tag.name;
    phrase_map_[AsciiToLower(tag.name)] = pred;
  }
}

std::optional<SemanticPredicate> KnowledgeBase::Resolve(
    const std::string& phrase) const {
  auto it = phrase_map_.find(
      AsciiToLower(std::string(StripAsciiWhitespace(phrase))));
  if (it == phrase_map_.end()) return std::nullopt;
  return it->second;
}

bool KnowledgeBase::Matches(const std::string& phrase,
                            const DocAttrs& attrs) const {
  auto pred = Resolve(phrase);
  if (!pred.has_value()) return false;
  return pred->Matches(attrs);
}

}  // namespace unify::corpus
