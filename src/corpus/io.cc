#include "corpus/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "corpus/dataset_profile.h"

namespace unify::corpus {

namespace {

constexpr char kFieldSep = '\x1f';
constexpr char kListSep = '\x1e';
constexpr const char* kCorpusMagic = "unify-corpus-v1";
constexpr const char* kEmbeddingMagic = "unify-embeddings-v1";

std::string JoinTags(const std::vector<std::string>& tags) {
  std::string out;
  for (size_t i = 0; i < tags.size(); ++i) {
    if (i) out.push_back(kListSep);
    out += tags[i];
  }
  return out;
}

std::vector<std::string> SplitTags(const std::string& s) {
  if (s.empty()) return {};
  return StrSplit(s, kListSep);
}

}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << kCorpusMagic << kFieldSep << corpus.name() << kFieldSep
      << corpus.size() << "\n";
  for (const auto& doc : corpus.docs()) {
    out << doc.id << kFieldSep << doc.title << kFieldSep << doc.text
        << kFieldSep << doc.attrs.category << kFieldSep
        << JoinTags(doc.attrs.tags) << kFieldSep << doc.attrs.views
        << kFieldSep << doc.attrs.score << kFieldSep << doc.attrs.answers
        << kFieldSep << doc.attrs.comments << kFieldSep << doc.attrs.words
        << kFieldSep << (doc.attrs.explicit_category ? 1 : 0) << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<Corpus> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument(path + ": empty file");
  }
  auto head = StrSplit(header, kFieldSep);
  if (head.size() != 3 || head[0] != kCorpusMagic) {
    return Status::InvalidArgument(path + ": not a unify corpus file");
  }
  const std::string name = head[1];
  auto count = ParseInt64(head[2]);
  if (!count.has_value() || *count < 0) {
    return Status::InvalidArgument(path + ": bad document count");
  }

  DatasetProfile profile;
  bool found = false;
  for (const auto& p : AllProfiles()) {
    if (p.name == name) {
      profile = p;
      found = true;
    }
  }
  if (!found) {
    return Status::NotFound("unknown dataset profile: " + name);
  }
  profile.doc_count = static_cast<size_t>(*count);

  std::vector<Document> docs;
  docs.reserve(static_cast<size_t>(*count));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = StrSplit(line, kFieldSep);
    if (fields.size() != 11) {
      return Status::InvalidArgument(path + ": malformed document line");
    }
    Document doc;
    auto id = ParseInt64(fields[0]);
    if (!id.has_value()) {
      return Status::InvalidArgument(path + ": bad document id");
    }
    doc.id = static_cast<uint64_t>(*id);
    doc.title = fields[1];
    doc.text = fields[2];
    doc.attrs.category = fields[3];
    doc.attrs.tags = SplitTags(fields[4]);
    doc.attrs.views = ParseInt64(fields[5]).value_or(0);
    doc.attrs.score = ParseInt64(fields[6]).value_or(0);
    doc.attrs.answers = ParseInt64(fields[7]).value_or(0);
    doc.attrs.comments = ParseInt64(fields[8]).value_or(0);
    doc.attrs.words = ParseInt64(fields[9]).value_or(0);
    doc.attrs.explicit_category = fields[10] == "1";
    docs.push_back(std::move(doc));
  }
  if (docs.size() != static_cast<size_t>(*count)) {
    return Status::InvalidArgument(path + ": document count mismatch");
  }
  return Corpus(std::move(profile), std::move(docs));
}

Status SaveEmbeddings(const std::vector<embedding::Vec>& vecs,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t dim = vecs.empty() ? 0 : vecs.front().size();
  out << kEmbeddingMagic << kFieldSep << vecs.size() << kFieldSep << dim
      << "\n";
  char buf[32];
  for (const auto& v : vecs) {
    if (v.size() != dim) {
      return Status::InvalidArgument("inconsistent embedding dimensions");
    }
    for (size_t i = 0; i < v.size(); ++i) {
      // Hex-float round-trips exactly.
      std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v[i]));
      if (i) out << ' ';
      out << buf;
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

StatusOr<std::vector<embedding::Vec>> LoadEmbeddings(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument(path + ": empty file");
  }
  auto head = StrSplit(header, kFieldSep);
  if (head.size() != 3 || head[0] != kEmbeddingMagic) {
    return Status::InvalidArgument(path + ": not an embedding file");
  }
  size_t n = static_cast<size_t>(ParseInt64(head[1]).value_or(-1));
  size_t dim = static_cast<size_t>(ParseInt64(head[2]).value_or(-1));
  std::vector<embedding::Vec> vecs;
  vecs.reserve(n);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    embedding::Vec v;
    v.reserve(dim);
    std::istringstream is(line);
    std::string token;
    while (is >> token) {
      v.push_back(static_cast<float>(std::strtod(token.c_str(), nullptr)));
    }
    if (v.size() != dim) {
      return Status::InvalidArgument(path + ": bad embedding row");
    }
    vecs.push_back(std::move(v));
  }
  if (vecs.size() != n) {
    return Status::InvalidArgument(path + ": embedding count mismatch");
  }
  return vecs;
}

}  // namespace unify::corpus
