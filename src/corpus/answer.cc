#include "corpus/answer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/stats.h"
#include "common/string_util.h"

namespace unify::corpus {

std::string Answer::ToString() const {
  switch (kind) {
    case Kind::kNone:
      return "<none>";
    case Kind::kNumber:
      return FormatDouble(number, 4);
    case Kind::kText:
      return text;
    case Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list.size(); ++i) {
        if (i) out += ", ";
        out += list[i];
      }
      return out + "]";
    }
  }
  return "<none>";
}

bool Answer::Equivalent(const Answer& a, const Answer& b, double rel_tol) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::kNone:
      return true;
    case Kind::kNumber: {
      double denom = std::max({std::fabs(a.number), std::fabs(b.number), 1e-9});
      return std::fabs(a.number - b.number) / denom <= rel_tol;
    }
    case Kind::kText:
      return AsciiToLower(a.text) == AsciiToLower(b.text);
    case Kind::kList: {
      if (a.list.size() != b.list.size()) return false;
      std::set<std::string> sa;
      std::set<std::string> sb;
      for (const auto& s : a.list) sa.insert(AsciiToLower(s));
      for (const auto& s : b.list) sb.insert(AsciiToLower(s));
      return sa == sb;
    }
  }
  return false;
}

namespace {

int64_t AttrValue(const DocAttrs& attrs, const std::string& attr) {
  if (attr == "views") return attrs.views;
  if (attr == "score") return attrs.score;
  if (attr == "answers") return attrs.answers;
  if (attr == "comments") return attrs.comments;
  if (attr == "words") return attrs.words;
  return 0;
}

bool NumericMatches(const nlq::Condition& c, const DocAttrs& attrs) {
  int64_t v = AttrValue(attrs, c.attribute);
  switch (c.cmp) {
    case nlq::Condition::Cmp::kGt:
      return v > c.value;
    case nlq::Condition::Cmp::kGe:
      return v >= c.value;
    case nlq::Condition::Cmp::kLt:
      return v < c.value;
    case nlq::Condition::Cmp::kLe:
      return v <= c.value;
    case nlq::Condition::Cmp::kEq:
      return v == c.value;
    case nlq::Condition::Cmp::kBetween:
      return v >= c.value && v <= c.value2;
  }
  return false;
}

bool ConditionMatches(const nlq::Condition& c, const DocAttrs& attrs,
                      const KnowledgeBase& kb) {
  if (c.kind == nlq::Condition::Kind::kNumeric)
    return NumericMatches(c, attrs);
  return kb.Matches(c.text, attrs);
}

std::vector<const Document*> FilterDocs(
    const std::vector<const Document*>& docs, const nlq::DocSet& set,
    const KnowledgeBase& kb) {
  std::vector<const Document*> out;
  for (const Document* d : docs) {
    bool ok = true;
    for (const auto& c : set.conditions) {
      if (!ConditionMatches(c, d->attrs, kb)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(d);
  }
  return out;
}

Answer Aggregate(const std::vector<const Document*>& docs,
                 const std::string& attr, nlq::AggFunc func, int percentile,
                 double count_scale) {
  if (docs.empty()) return Answer::None();
  SampleStats stats;
  for (const Document* d : docs) {
    stats.Add(static_cast<double>(AttrValue(d->attrs, attr)));
  }
  switch (func) {
    case nlq::AggFunc::kSum:
      return Answer::Number(stats.sum() * count_scale);
    case nlq::AggFunc::kAvg:
      return Answer::Number(stats.Mean());
    case nlq::AggFunc::kMin:
      return Answer::Number(stats.Min());
    case nlq::AggFunc::kMax:
      return Answer::Number(stats.Max());
    case nlq::AggFunc::kMedian:
      return Answer::Number(stats.Median());
    case nlq::AggFunc::kPercentile:
      return Answer::Number(stats.Quantile(percentile / 100.0));
  }
  return Answer::None();
}

}  // namespace

Answer EvaluateQueryOnDocs(const nlq::QueryAst& q,
                           const std::vector<const Document*>& docs,
                           const KnowledgeBase& kb, double count_scale) {
  switch (q.task) {
    case nlq::TaskKind::kCount: {
      auto matched = FilterDocs(docs, q.docset, kb);
      return Answer::Number(static_cast<double>(matched.size()) *
                            count_scale);
    }
    case nlq::TaskKind::kAgg: {
      auto matched = FilterDocs(docs, q.docset, kb);
      return Aggregate(matched, q.attr, q.agg, q.percentile, count_scale);
    }
    case nlq::TaskKind::kTopK: {
      auto matched = FilterDocs(docs, q.docset, kb);
      std::sort(matched.begin(), matched.end(),
                [&](const Document* a, const Document* b) {
                  int64_t va = AttrValue(a->attrs, q.attr);
                  int64_t vb = AttrValue(b->attrs, q.attr);
                  if (va != vb) return q.top_desc ? va > vb : va < vb;
                  return a->id < b->id;
                });
      std::vector<std::string> titles;
      for (size_t i = 0;
           i < matched.size() && i < static_cast<size_t>(q.top_k); ++i) {
        titles.push_back(matched[i]->title);
      }
      return Answer::List(std::move(titles));
    }
    case nlq::TaskKind::kCompareCount: {
      size_t a = FilterDocs(docs, q.docset, kb).size();
      size_t b = FilterDocs(docs, q.docset_b, kb).size();
      return Answer::Text(a >= b ? "A" : "B");
    }
    case nlq::TaskKind::kCompareAgg: {
      Answer a = Aggregate(FilterDocs(docs, q.docset, kb), q.attr, q.agg,
                           q.percentile, count_scale);
      Answer b = Aggregate(FilterDocs(docs, q.docset_b, kb), q.attr, q.agg,
                           q.percentile, count_scale);
      if (a.kind != Answer::Kind::kNumber || b.kind != Answer::Kind::kNumber)
        return Answer::None();
      return Answer::Text(a.number >= b.number ? "A" : "B");
    }
    case nlq::TaskKind::kGroupArgBest: {
      auto matched = FilterDocs(docs, q.docset, kb);
      std::map<std::string, std::vector<const Document*>> groups;
      for (const Document* d : matched) groups[d->attrs.category].push_back(d);
      std::string best_group;
      double best_value = 0;
      bool any = false;
      for (const auto& [name, members] : groups) {
        double value = 0;
        switch (q.metric.kind) {
          case nlq::GroupMetric::Kind::kCount:
            value = static_cast<double>(members.size());
            break;
          case nlq::GroupMetric::Kind::kAgg: {
            Answer a = Aggregate(members, q.metric.attr, q.metric.func,
                                 q.percentile, 1.0);
            if (a.kind != Answer::Kind::kNumber) continue;
            value = a.number;
            break;
          }
          case nlq::GroupMetric::Kind::kRatio: {
            size_t num = 0;
            size_t den = 0;
            for (const Document* d : members) {
              if (q.metric.num.cond &&
                  ConditionMatches(*q.metric.num.cond, d->attrs, kb))
                ++num;
              if (q.metric.den.cond &&
                  ConditionMatches(*q.metric.den.cond, d->attrs, kb))
                ++den;
            }
            if (den == 0) continue;
            value = static_cast<double>(num) / static_cast<double>(den);
            break;
          }
        }
        if (!any || (q.best_is_max ? value > best_value
                                   : value < best_value)) {
          any = true;
          best_value = value;
          best_group = name;
        }
      }
      if (!any) return Answer::None();
      return Answer::Text(best_group);
    }
    case nlq::TaskKind::kRatio: {
      double a = static_cast<double>(FilterDocs(docs, q.docset, kb).size());
      double b = static_cast<double>(FilterDocs(docs, q.docset_b, kb).size());
      if (b == 0) return Answer::None();
      return Answer::Number(a / b);
    }
    case nlq::TaskKind::kSetCount: {
      auto a = FilterDocs(docs, q.docset, kb);
      auto b = FilterDocs(docs, q.docset_b, kb);
      std::set<uint64_t> sa;
      std::set<uint64_t> sb;
      for (const Document* d : a) sa.insert(d->id);
      for (const Document* d : b) sb.insert(d->id);
      size_t n = 0;
      switch (q.set_op) {
        case nlq::SetOpKind::kUnion: {
          std::set<uint64_t> u = sa;
          u.insert(sb.begin(), sb.end());
          n = u.size();
          break;
        }
        case nlq::SetOpKind::kIntersect: {
          for (uint64_t id : sa) {
            if (sb.count(id)) ++n;
          }
          break;
        }
        case nlq::SetOpKind::kDifference: {
          for (uint64_t id : sa) {
            if (!sb.count(id)) ++n;
          }
          break;
        }
      }
      return Answer::Number(static_cast<double>(n) * count_scale);
    }
  }
  return Answer::None();
}

Answer EvaluateQuery(const nlq::QueryAst& q, const Corpus& corpus) {
  std::vector<const Document*> docs;
  docs.reserve(corpus.size());
  for (const auto& d : corpus.docs()) docs.push_back(&d);
  return EvaluateQueryOnDocs(q, docs, corpus.knowledge(), 1.0);
}

}  // namespace unify::corpus
