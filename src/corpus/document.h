#ifndef UNIFY_CORPUS_DOCUMENT_H_
#define UNIFY_CORPUS_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unify::corpus {

/// The latent structured record behind one unstructured document.
///
/// The generator renders these attributes into English prose; the exact
/// ground-truth evaluator reads them directly (the paper computed ground
/// truths manually); and the simulated LLM consults them — with injected
/// errors — as its "comprehension" of the document text. Pre-programmed
/// physical operators never see this struct: they work on `Document::text`
/// only.
struct DocAttrs {
  /// The document's topical category (a sport, an AI subfield, ...).
  std::string category;
  /// Semantic tags present in the document ("injury", "training", ...).
  std::vector<std::string> tags;
  int64_t views = 0;
  int64_t score = 0;
  int64_t answers = 0;
  int64_t comments = 0;
  int64_t words = 0;
  /// Whether the rendered text names the category with an explicit keyword
  /// (surface-matchable) or only an implicit cue phrase.
  bool explicit_category = true;

  bool HasTag(const std::string& tag) const {
    for (const auto& t : tags) {
      if (t == tag) return true;
    }
    return false;
  }
};

/// One unstructured document: an id, a title, rendered prose, and the
/// latent attributes that produced it.
struct Document {
  uint64_t id = 0;
  std::string title;
  std::string text;
  DocAttrs attrs;
};

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_DOCUMENT_H_
