#ifndef UNIFY_CORPUS_DATASET_PROFILE_H_
#define UNIFY_CORPUS_DATASET_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace unify::corpus {

/// One topical category of a dataset (a sport, an AI subfield, a law area,
/// a Wikipedia subject).
struct CategorySpec {
  /// Canonical name used in queries ("tennis", "machine learning").
  std::string name;
  /// Content keywords that explicitly signal the category in document text.
  /// The first keyword is the most distinctive.
  std::vector<std::string> keywords;
  /// Cue sentences that imply the category without naming it (the 20% of
  /// documents that keyword matching misses but an LLM understands).
  std::vector<std::string> implicit_phrases;
  /// Relative frequency weight.
  double weight = 1.0;
};

/// One semantic tag (injury, training, ...) that documents may carry.
struct TagSpec {
  std::string name;
  /// Sentences that contain the tag word itself.
  std::vector<std::string> explicit_phrases;
  /// Sentences that imply the tag without the tag word.
  std::vector<std::string> implicit_phrases;
  /// Base probability of a document carrying this tag.
  double base_prob = 0.2;
};

/// A named group of categories, usable as a semantic filter phrase
/// ("ball sports" covers football, tennis, ...).
struct GroupSpec {
  std::string name;
  /// A distinctive content token of the group name used for embeddings
  /// ("ball" for "ball sports").
  std::string distinctive_token;
  std::vector<std::string> members;
};

/// Everything needed to synthesize one of the paper's four evaluation
/// corpora (Section VII-A). The document counts match the paper.
struct DatasetProfile {
  std::string name;           ///< "sports", "ai", "law", "wiki"
  std::string entity;         ///< "questions" / "articles"
  std::string category_kind;  ///< "sport" / "topic" / "area" / "subject"
  size_t doc_count = 1000;

  std::vector<CategorySpec> categories;
  std::vector<TagSpec> tags;
  std::vector<GroupSpec> groups;

  /// Zipf exponent for category frequencies.
  double category_zipf = 0.7;

  /// Attribute distributions: views ~ round(exp(N(mu, sigma))),
  /// score/answers/comments/words as documented in the generator.
  double views_log_mean = 5.5;
  double views_log_sigma = 1.3;
};

/// The four evaluation datasets (paper Section VII-A):
/// Sports (3,898 docs), AI (5,137), Law (2,053), Wiki (1,000).
DatasetProfile SportsProfile();
DatasetProfile AiProfile();
DatasetProfile LawProfile();
DatasetProfile WikiProfile();

/// All four, in paper order.
std::vector<DatasetProfile> AllProfiles();

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_DATASET_PROFILE_H_
