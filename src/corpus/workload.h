#ifndef UNIFY_CORPUS_WORKLOAD_H_
#define UNIFY_CORPUS_WORKLOAD_H_

#include <string>
#include <vector>

#include "corpus/answer.h"
#include "corpus/corpus.h"
#include "nlq/ast.h"

namespace unify::corpus {

/// One benchmark query: English text, its semantic AST (never shown to the
/// planner), and the exact ground truth.
struct QueryCase {
  int id = 0;
  int template_id = 0;
  uint32_t style = 0;  ///< paraphrase variant used for rendering
  std::string text;
  nlq::QueryAst ast;
  Answer ground_truth;
};

struct WorkloadOptions {
  /// Queries per template (paper: 5 ⇒ 100 queries from 20 templates).
  int per_template = 5;
  uint64_t seed = 1234;
};

/// Instantiates the 20 manually designed query templates (paper Section
/// VII-A, "Test Workloads") against `corpus`. Literals are sampled from
/// the data; instantiations with degenerate ground truths (empty
/// aggregates, zero denominators, near-tie arg-best winners) are rejected
/// and resampled so accuracy measurement is stable.
std::vector<QueryCase> GenerateWorkload(const Corpus& corpus,
                                        const WorkloadOptions& options);

/// Semantic filter predicates (condition phrases) drawn from the workload
/// space, used as *historical queries* for calibrating the importance
/// function of semantic cardinality estimation and the cost model
/// (Sections VI-A/B). Returns rendered condition phrases with their true
/// selectivities.
struct HistoricalPredicate {
  nlq::Condition condition;
  std::string phrase;
  double selectivity = 0;  ///< fraction of corpus satisfying it
};
std::vector<HistoricalPredicate> GenerateHistoricalPredicates(
    const Corpus& corpus, int count, uint64_t seed);

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_WORKLOAD_H_
