#include "corpus/corpus.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/rng.h"
#include "text/tokenizer.h"

namespace unify::corpus {

Corpus::Corpus(DatasetProfile profile, std::vector<Document> docs)
    : profile_(std::move(profile)), kb_(profile_), docs_(std::move(docs)) {}

namespace {

const std::vector<std::string>& Fillers() {
  // Generic sentences with no topical, tag, or attribute vocabulary (they
  // must not confuse keyword matching or field extraction).
  static const auto* kFillers = new std::vector<std::string>{
      "Thanks in advance for any help.",
      "I searched the archive but found nothing similar.",
      "Apologies if this was asked before.",
      "Any pointers would be appreciated.",
      "I am fairly new to this, so please bear with me.",
      "Happy to add details if something is unclear.",
      "This has been bothering me for a while.",
      "Curious what more experienced people think.",
  };
  return *kFillers;
}

const std::vector<std::string>& ExplicitCategoryTemplates() {
  static const auto* kTemplates = new std::vector<std::string>{
      "This question is about %s.",
      "I have a question regarding %s.",
      "My question concerns %s.",
  };
  return *kTemplates;
}

std::string Sprintf1(const std::string& tmpl, const std::string& arg) {
  std::string out = tmpl;
  size_t pos = out.find("%s");
  if (pos != std::string::npos) out.replace(pos, 2, arg);
  return out;
}

int64_t LogNormalInt(Rng& rng, double mu, double sigma, int64_t lo,
                     int64_t hi) {
  double v = std::exp(rng.Gaussian(mu, sigma));
  int64_t r = static_cast<int64_t>(std::llround(v));
  return std::clamp(r, lo, hi);
}

}  // namespace

Corpus GenerateCorpus(const DatasetProfile& profile, uint64_t seed) {
  Rng rng(HashCombine(seed, StableHash64(profile.name)));

  // Category sampling weights: profile weight shaped by a Zipf decay so
  // frequencies are skewed like real forums.
  std::vector<double> weights;
  for (size_t i = 0; i < profile.categories.size(); ++i) {
    weights.push_back(profile.categories[i].weight /
                      std::pow(static_cast<double>(i + 1),
                               profile.category_zipf));
  }

  std::vector<Document> docs;
  docs.reserve(profile.doc_count);
  for (uint64_t id = 0; id < profile.doc_count; ++id) {
    Rng doc_rng = rng.Fork(id);
    Document doc;
    doc.id = id;
    doc.title = "Post " + std::to_string(id);

    // --- latent attributes ---
    const CategorySpec& cat =
        profile.categories[doc_rng.Categorical(weights)];
    doc.attrs.category = cat.name;
    doc.attrs.views = LogNormalInt(doc_rng, profile.views_log_mean,
                                   profile.views_log_sigma, 1, 2000000);
    doc.attrs.score = LogNormalInt(doc_rng, 1.6, 1.0, 0, 5000);
    doc.attrs.answers = LogNormalInt(doc_rng, 0.9, 0.7, 0, 60) - 1;
    if (doc.attrs.answers < 0) doc.attrs.answers = 0;
    doc.attrs.comments = LogNormalInt(doc_rng, 1.2, 0.9, 0, 200) - 1;
    if (doc.attrs.comments < 0) doc.attrs.comments = 0;
    doc.attrs.words = doc_rng.UniformInt(40, 400);
    doc.attrs.explicit_category = doc_rng.Bernoulli(0.8);

    for (const auto& tag : profile.tags) {
      // Per-(category, tag) rate modulation so tag frequencies differ
      // across categories (ratio/arg-max queries then have real structure).
      double h = static_cast<double>(
                     StableHash64(cat.name + "|" + tag.name) % 1000) /
                 1000.0;
      double prob = tag.base_prob * (0.5 + 1.0 * h);
      if (doc_rng.Bernoulli(prob)) doc.attrs.tags.push_back(tag.name);
    }

    // --- prose rendering ---
    std::ostringstream text;
    text << doc.title << ".";
    if (doc.attrs.explicit_category) {
      const auto& tmpl = ExplicitCategoryTemplates()[doc_rng.NextUint64(
          ExplicitCategoryTemplates().size())];
      text << " " << Sprintf1(tmpl, cat.name);
      // A second keyword sentence strengthens surface signal.
      if (!cat.keywords.empty() && doc_rng.Bernoulli(0.6)) {
        const auto& kw =
            cat.keywords[doc_rng.NextUint64(cat.keywords.size())];
        text << " Everything here involves the " << kw << " side of things.";
      }
    } else {
      // Implicit documents stay on topic across several sentences, like
      // real posts — they just never name the category.
      size_t first = doc_rng.NextUint64(cat.implicit_phrases.size());
      text << " " << cat.implicit_phrases[first];
      if (cat.implicit_phrases.size() > 1) {
        size_t second = (first + 1) % cat.implicit_phrases.size();
        text << " " << cat.implicit_phrases[second];
      }
    }
    for (const auto& tag_name : doc.attrs.tags) {
      for (const auto& tag : profile.tags) {
        if (tag.name != tag_name) continue;
        const auto& pool =
            doc_rng.Bernoulli(0.7) ? tag.explicit_phrases
                                   : tag.implicit_phrases;
        text << " " << pool[doc_rng.NextUint64(pool.size())];
      }
    }
    text << " " << Fillers()[doc_rng.NextUint64(Fillers().size())];
    text << " It has been viewed " << doc.attrs.views << " times.";
    text << " Score: " << doc.attrs.score << ".";
    text << " It has " << doc.attrs.answers << " answers and "
         << doc.attrs.comments << " comments.";
    text << " The post contains " << doc.attrs.words << " words.";
    doc.text = text.str();
    docs.push_back(std::move(doc));
  }
  return Corpus(profile, std::move(docs));
}

EmbeddingSpec BuildEmbeddingSpec(const DatasetProfile& profile) {
  EmbeddingSpec spec;

  auto canon_of = [](const std::string& name) {
    std::string c;
    for (char ch : name) {
      if (ch != ' ') c.push_back(ch);
    }
    return c;
  };

  // Ownership: stemmed token -> set of owners, resolved separately for
  // categories and tags (a token can disambiguate a category even if some
  // tag phrase also uses it — categories take precedence). Tokens claimed
  // by several owners of the same type stay un-aliased (realistic
  // polysemy noise).
  std::map<std::string, std::set<std::string>> cat_owners;
  std::map<std::string, std::set<std::string>> tag_owners;
  auto claim = [](std::map<std::string, std::set<std::string>>& owners,
                  const std::string& token, const std::string& owner) {
    owners[text::Stem(token)].insert(owner);
  };

  for (const auto& cat : profile.categories) {
    const std::string owner = "cat:" + cat.name;
    for (const auto& tok : text::ContentTokens(cat.name)) {
      claim(cat_owners, tok, owner);
    }
    for (const auto& kw : cat.keywords) claim(cat_owners, kw, owner);
    for (const auto& phrase : cat.implicit_phrases) {
      for (const auto& tok : text::ContentTokens(phrase)) {
        claim(cat_owners, tok, owner);
      }
    }
  }
  for (const auto& tag : profile.tags) {
    const std::string owner = "tag:" + tag.name;
    claim(tag_owners, tag.name, owner);
    for (const auto& pool : {tag.explicit_phrases, tag.implicit_phrases}) {
      for (const auto& phrase : pool) {
        for (const auto& tok : text::ContentTokens(phrase)) {
          claim(tag_owners, tok, owner);
        }
      }
    }
  }
  std::map<std::string, std::set<std::string>> owners;
  for (const auto& [token, who] : cat_owners) {
    if (who.size() == 1) owners[token] = who;
  }
  for (const auto& [token, who] : tag_owners) {
    if (who.size() == 1 && owners.count(token) == 0) owners[token] = who;
  }

  // Canonical topic tokens.
  std::map<std::string, std::string> owner_canon;
  for (const auto& cat : profile.categories) {
    owner_canon["cat:" + cat.name] = canon_of(cat.name);
    spec.topic_tokens.push_back(canon_of(cat.name));
  }
  for (const auto& tag : profile.tags) {
    owner_canon["tag:" + tag.name] = tag.name;
    spec.topic_tokens.push_back(tag.name);
  }
  for (const auto& group : profile.groups) {
    spec.topic_tokens.push_back(canon_of(group.name));
  }

  // Group membership: category canonical also implies group canonicals.
  std::map<std::string, std::vector<std::string>> cat_groups;
  for (const auto& group : profile.groups) {
    for (const auto& m : group.members) {
      cat_groups[m].push_back(canon_of(group.name));
    }
  }

  for (const auto& [token, who] : owners) {
    if (who.size() != 1) continue;
    const std::string& owner = *who.begin();
    std::vector<std::string> targets = {owner_canon[owner]};
    if (owner.rfind("cat:", 0) == 0) {
      const std::string cat_name = owner.substr(4);
      for (const auto& g : cat_groups[cat_name]) targets.push_back(g);
    }
    spec.aliases.emplace_back(token, std::move(targets));
  }

  // Group query phrases: the distinctive token of the group name points at
  // the group canonical ("ball" -> "ballsports").
  for (const auto& group : profile.groups) {
    spec.aliases.emplace_back(
        group.distinctive_token,
        std::vector<std::string>{canon_of(group.name)});
  }
  return spec;
}

}  // namespace unify::corpus
