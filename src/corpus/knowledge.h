#ifndef UNIFY_CORPUS_KNOWLEDGE_H_
#define UNIFY_CORPUS_KNOWLEDGE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "corpus/dataset_profile.h"
#include "corpus/document.h"

namespace unify::corpus {

/// Resolution of a semantic phrase to a predicate over latent attributes.
struct SemanticPredicate {
  enum class Kind {
    kCategory,  ///< attrs.category ∈ categories
    kTag,       ///< attrs.tags contains tag
  };
  Kind kind = Kind::kCategory;
  std::unordered_set<std::string> categories;
  std::string tag;

  bool Matches(const DocAttrs& attrs) const {
    if (kind == Kind::kCategory) return categories.count(attrs.category) > 0;
    return attrs.HasTag(tag);
  }
};

/// Shared world knowledge: which phrases mean which predicates. Used by
/// the exact ground-truth evaluator and by the simulated LLM (its
/// "understanding" of phrases like "ball sports" or "injury-related").
/// Resolution is normalization-based: category names, group names, and tag
/// names all resolve; unknown phrases do not.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(const DatasetProfile& profile);

  /// Resolves a semantic phrase ("tennis", "ball sports", "injury").
  /// Returns nullopt for phrases outside the dataset's vocabulary.
  std::optional<SemanticPredicate> Resolve(const std::string& phrase) const;

  /// True iff a document with `attrs` satisfies `phrase`; false for
  /// unknown phrases.
  bool Matches(const std::string& phrase, const DocAttrs& attrs) const;

  /// All category names, in profile order.
  const std::vector<std::string>& categories() const { return categories_; }
  /// All tag names, in profile order.
  const std::vector<std::string>& tags() const { return tags_; }
  /// All group names, in profile order.
  const std::vector<std::string>& groups() const { return groups_; }

  const DatasetProfile& profile() const { return profile_; }

 private:
  DatasetProfile profile_;
  std::vector<std::string> categories_;
  std::vector<std::string> tags_;
  std::vector<std::string> groups_;
  std::unordered_map<std::string, SemanticPredicate> phrase_map_;
};

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_KNOWLEDGE_H_
