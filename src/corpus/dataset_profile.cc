#include "corpus/dataset_profile.h"

namespace unify::corpus {

namespace {

CategorySpec Cat(std::string name, std::vector<std::string> keywords,
                 std::vector<std::string> implicit, double weight = 1.0) {
  CategorySpec c;
  c.name = std::move(name);
  c.keywords = std::move(keywords);
  c.implicit_phrases = std::move(implicit);
  c.weight = weight;
  return c;
}

TagSpec Tag(std::string name, std::vector<std::string> explicit_phrases,
            std::vector<std::string> implicit, double prob) {
  TagSpec t;
  t.name = std::move(name);
  t.explicit_phrases = std::move(explicit_phrases);
  t.implicit_phrases = std::move(implicit);
  t.base_prob = prob;
  return t;
}

}  // namespace

DatasetProfile SportsProfile() {
  DatasetProfile p;
  p.name = "sports";
  p.entity = "questions";
  p.category_kind = "sport";
  p.doc_count = 3898;
  p.views_log_mean = 5.8;
  p.views_log_sigma = 1.3;
  p.categories = {
      Cat("football", {"football", "goalkeeper", "striker", "offside"},
          {"The referee awarded a penalty kick after the tackle in the box.",
           "Our team conceded two goals in the second half at the stadium."}),
      Cat("basketball", {"basketball", "dunk", "rebound", "pointguard"},
          {"He drove to the hoop and finished with a layup at the buzzer.",
           "The team practiced free throws and three pointers all week."}),
      Cat("tennis", {"tennis", "racket", "wimbledon", "backhand"},
          {"Her serve reached the far corner of the court during the final "
           "set.",
           "The umpire called a double fault on match point."}),
      Cat("golf", {"golf", "fairway", "birdie", "putter"},
          {"I landed the approach shot on the green and two putted.",
           "He needed one stroke under par on the final hole."}),
      Cat("cricket", {"cricket", "wicket", "batsman", "bowler"},
          {"The innings ended when the last man was caught at slip.",
           "They declared after reaching four hundred runs on day two."}),
      Cat("baseball", {"baseball", "pitcher", "homerun", "inning"},
          {"He stole second base after a walk in the ninth.",
           "The batter struck out swinging with the bases loaded."}),
      Cat("volleyball", {"volleyball", "spike", "setter", "libero"},
          {"She blocked the attack at the net to win the rally.",
           "Our rotation fell apart after a string of service errors."}),
      Cat("rugby", {"rugby", "scrum", "tryline", "flyhalf"},
          {"The forwards pushed over the line for a converted score.",
           "A knock on handed possession back before the lineout."}),
      Cat("swimming", {"swimming", "freestyle", "backstroke", "poolside"},
          {"My tumble turn keeps slowing down every lap in the pool.",
           "She touched the wall first in the relay final."}),
      Cat("running", {"running", "marathon", "sprinting", "jogging"},
          {"I hit the wall at kilometer thirty five of the race.",
           "His pace dropped on the final lap of the track."}),
      Cat("cycling", {"cycling", "peloton", "derailleur", "velodrome"},
          {"The breakaway was caught on the last climb of the stage.",
           "My chain slipped while climbing out of the saddle."}),
      Cat("boxing", {"boxing", "knockout", "southpaw", "jab"},
          {"He won the bout on points after twelve rounds in the ring.",
           "The referee stopped the fight in the eighth round."}),
      Cat("hockey", {"hockey", "puck", "slapshot", "faceoff"},
          {"The goalie made a glove save in overtime on the ice.",
           "They scored on the power play late in the third period."}),
      Cat("badminton", {"badminton", "shuttlecock", "dropshot", "smash"},
          {"Her net play won the decisive rally of the third game.",
           "He kept lifting to the back court to defend."}),
  };
  p.groups = {
      {"ball sports",
       "ball",
       {"football", "basketball", "tennis", "golf", "cricket", "baseball",
        "volleyball", "rugby", "hockey", "badminton"}},
      {"racket sports", "racket", {"tennis", "badminton"}},
      {"endurance sports",
       "endurance",
       {"swimming", "running", "cycling"}},
  };
  p.tags = {
      Tag("injury",
          {"I am worried this injury will keep me out for months.",
           "The team doctor said the injury needs rest."},
          {"My knee swelled up badly after the last session.",
           "I pulled a hamstring and can barely walk."},
          0.28),
      Tag("training",
          {"My training schedule includes two sessions per day.",
           "What training plan works best before a competition?"},
          {"I do drills every morning and conditioning at night.",
           "How many practice hours per week are enough?"},
          0.30),
      Tag("rules",
          {"The rules on this situation seem ambiguous to me.",
           "Which rule applies when both sides appeal?"},
          {"Is this even legal under the current regulations?",
           "The officials interpreted the situation differently."},
          0.22),
      Tag("equipment",
          {"What equipment should a beginner buy first?",
           "My equipment feels worn out after one season."},
          {"Are these shoes suitable for hard surfaces?",
           "The grip on my gear keeps coming loose."},
          0.18),
      Tag("nutrition",
          {"Does nutrition before a match matter that much?",
           "I changed my nutrition and feel faster."},
          {"What should I eat the night before a long event?",
           "I cramp unless I drink electrolytes during play."},
          0.12),
      Tag("technique",
          {"My technique breaks down when I get tired.",
           "Is there a drill to improve technique quickly?"},
          {"My form falls apart under pressure late in games.",
           "Coaches keep telling me to fix my follow through."},
          0.20),
  };
  return p;
}

DatasetProfile AiProfile() {
  DatasetProfile p;
  p.name = "ai";
  p.entity = "questions";
  p.category_kind = "topic";
  p.doc_count = 5137;
  p.views_log_mean = 5.5;
  p.views_log_sigma = 1.4;
  p.categories = {
      Cat("machine learning", {"machine", "learning", "classifier", "sklearn"},
          {"My model overfits the moment I add more features.",
           "Cross validation gives wildly different scores per fold."}),
      Cat("neural networks", {"neural", "networks", "backpropagation",
                              "perceptron"},
          {"The gradient vanishes after the tenth layer.",
           "Batch normalization changed my convergence entirely."}),
      Cat("nlp", {"nlp", "tokenizer", "corpus", "embedding"},
          {"The model cannot handle negation in user reviews.",
           "Stemming hurts recall on morphologically rich languages."}),
      Cat("computer vision", {"vision", "convolution", "segmentation",
                              "pixels"},
          {"Bounding boxes drift when objects overlap heavily.",
           "Data augmentation with rotations hurt my accuracy."}),
      Cat("reinforcement learning", {"reinforcement", "reward", "qlearning",
                                     "policy"},
          {"The agent exploits a loophole in the environment.",
           "Exploration collapses after the first thousand episodes."}),
      Cat("robotics", {"robotics", "actuator", "kinematics", "gripper"},
          {"The arm overshoots whenever the payload changes.",
           "Sensor fusion lags behind the control loop."}),
      Cat("ethics", {"ethics", "fairness", "bias", "accountability"},
          {"Should a model ever decide parole outcomes?",
           "The training data encodes historical discrimination."}),
      Cat("search", {"search", "heuristic", "astar", "minimax"},
          {"The branching factor explodes beyond depth six.",
           "Pruning rarely triggers with this evaluation function."}),
      Cat("optimization", {"optimization", "gradient", "convex", "annealing"},
          {"The loss plateaus long before the minimum.",
           "Momentum overshoots the narrow valley every time."}),
      Cat("knowledge representation", {"knowledge", "ontology", "logic",
                                       "reasoning"},
          {"The inference engine loops on recursive definitions.",
           "Facts contradict each other across the merged graphs."}),
  };
  p.groups = {
      {"deep learning topics",
       "deep",
       {"neural networks", "nlp", "computer vision",
        "reinforcement learning"}},
      {"symbolic topics",
       "symbolic",
       {"search", "knowledge representation"}},
  };
  p.tags = {
      Tag("implementation",
          {"My implementation crashes on the first batch.",
           "Is this implementation detail framework specific?"},
          {"The code throws a shape mismatch at runtime.",
           "My script runs out of memory on the GPU."},
          0.30),
      Tag("theory",
          {"Is there theory explaining why this converges?",
           "The theory predicts a different sample complexity."},
          {"Can someone point me to a proof of this bound?",
           "What assumptions make this guarantee hold?"},
          0.22),
      Tag("datasets",
          {"Which datasets are standard for this benchmark?",
           "The dataset labels look noisy to me."},
          {"I cannot find labeled examples for this domain.",
           "The class balance in my training set is terrible."},
          0.20),
      Tag("performance",
          {"Inference performance drops under concurrent load.",
           "How do I profile performance bottlenecks here?"},
          {"Latency doubles when the batch size exceeds eight.",
           "Throughput is far below what the paper reports."},
          0.20),
      Tag("career",
          {"Is a career in this field viable without a degree?",
           "What career paths exist for self taught people?"},
          {"Should I take the research internship or the job offer?",
           "Do employers value publications or projects more?"},
          0.10),
      Tag("tools",
          {"Which tools do you recommend for experiment tracking?",
           "The tools ecosystem changes every six months."},
          {"My notebook environment breaks after every upgrade.",
           "Is there a library that handles this pipeline?"},
          0.18),
  };
  return p;
}

DatasetProfile LawProfile() {
  DatasetProfile p;
  p.name = "law";
  p.entity = "questions";
  p.category_kind = "area";
  p.doc_count = 2053;
  p.views_log_mean = 5.3;
  p.views_log_sigma = 1.2;
  p.categories = {
      Cat("contract law", {"contract", "breach", "clause", "consideration"},
          {"The other party never signed the final agreement.",
           "They stopped performing after the first installment."}),
      Cat("criminal law", {"criminal", "felony", "prosecution", "indictment"},
          {"The police searched the car without a warrant.",
           "He was arrested but never read his rights."}),
      Cat("copyright", {"copyright", "infringement", "royalty", "fairuse"},
          {"Someone reposted my photographs without permission.",
           "Can I quote two pages of a novel in my blog?"}),
      Cat("employment law", {"employment", "dismissal", "wages", "overtime"},
          {"My employer fired me the day after my complaint.",
           "They refuse to pay for the extra hours I worked."}),
      Cat("family law", {"family", "custody", "divorce", "alimony"},
          {"My ex wants to move abroad with our children.",
           "We separated last year but never formalized anything."}),
      Cat("tax law", {"tax", "deduction", "audit", "liability"},
          {"The revenue service flagged my home office expenses.",
           "Do I owe anything on gifts from relatives overseas?"}),
      Cat("privacy", {"privacy", "surveillance", "consent", "gdpr"},
          {"My landlord installed cameras facing my door.",
           "An app shared my location history with advertisers."}),
      Cat("immigration", {"immigration", "visa", "asylum", "deportation"},
          {"My status expires before the renewal window opens.",
           "The consulate rejected the application without reasons."}),
      Cat("property law", {"property", "easement", "tenant", "deed"},
          {"The neighbor built a fence two meters into my land.",
           "Our landlord entered the apartment while we were away."}),
      Cat("constitutional law", {"constitutional", "amendment", "rights",
                                 "judicial"},
          {"Can a city ban assemblies in public parks entirely?",
           "The new statute seems to conflict with free speech."}),
  };
  p.groups = {
      {"civil law areas",
       "civil",
       {"contract law", "copyright", "employment law", "family law",
        "property law"}},
      {"public law areas",
       "public",
       {"criminal law", "constitutional law", "immigration", "tax law"}},
  };
  p.tags = {
      Tag("liability",
          {"Who bears liability if both sides were careless?",
           "Does liability transfer with the sale?"},
          {"Am I on the hook for the damage my guest caused?",
           "Could I be held responsible for their mistake?"},
          0.25),
      Tag("damages",
          {"What damages can I realistically recover?",
           "Are punitive damages available in this situation?"},
          {"Can I claim the repair costs and lost income?",
           "How is compensation calculated for delays?"},
          0.22),
      Tag("procedure",
          {"What procedure applies before filing suit?",
           "Did they violate procedure by skipping notice?"},
          {"Which court do I even file this in?",
           "Is there a deadline I am about to miss?"},
          0.26),
      Tag("evidence",
          {"Is this recording admissible evidence?",
           "The only evidence is a text message thread."},
          {"All I have is a verbal promise and one witness.",
           "Would screenshots hold up in court?"},
          0.20),
      Tag("penalties",
          {"What penalties apply for a first offense?",
           "Can penalties be reduced by settling early?"},
          {"Could this end in jail time or just a fine?",
           "What is the maximum sentence for this?"},
          0.15),
      Tag("appeal",
          {"Can I appeal if new facts surface later?",
           "The appeal window seems extremely short."},
          {"Is there any way to challenge the ruling?",
           "What happens after the higher court takes the case?"},
          0.12),
  };
  return p;
}

DatasetProfile WikiProfile() {
  DatasetProfile p;
  p.name = "wiki";
  p.entity = "articles";
  p.category_kind = "subject";
  p.doc_count = 1000;
  p.views_log_mean = 6.2;
  p.views_log_sigma = 1.5;
  p.categories = {
      Cat("history", {"history", "empire", "dynasty", "revolution"},
          {"The treaty ended a war that lasted three decades.",
           "Archaeologists dated the settlement to the bronze age."}),
      Cat("science", {"science", "experiment", "physics", "molecule"},
          {"The hypothesis survived every replication attempt.",
           "Researchers measured the effect at the particle level."}),
      Cat("geography", {"geography", "peninsula", "plateau", "archipelago"},
          {"The river basin drains half the continent.",
           "The climate varies sharply across the mountain range."}),
      Cat("music", {"music", "symphony", "album", "melody"},
          {"The recording topped the charts for nine weeks.",
           "The composer wrote the piece for a chamber ensemble."}),
      Cat("film", {"film", "director", "screenplay", "cinematography"},
          {"The production moved to three countries during shooting.",
           "Critics praised the lead performance at the premiere."}),
      Cat("technology", {"technology", "semiconductor", "software",
                         "internet"},
          {"The device shipped with a novel chip architecture.",
           "Adoption exploded once the protocol became open."}),
      Cat("literature", {"literature", "novel", "poetry", "manuscript"},
          {"The author published the work under a pseudonym.",
           "The trilogy was translated into forty languages."}),
      Cat("politics", {"politics", "election", "parliament", "legislation"},
          {"The coalition collapsed after the budget vote.",
           "The reform passed by a single vote margin."}),
      Cat("art", {"art", "painting", "sculpture", "gallery"},
          {"The canvas was restored after decades in storage.",
           "The exhibition toured five museums worldwide."}),
      Cat("medicine", {"medicine", "vaccine", "diagnosis", "clinical"},
          {"The trial showed a strong effect in older patients.",
           "The treatment protocol changed after new findings."}),
  };
  p.groups = {
      {"creative subjects", "creative", {"music", "film", "literature", "art"}},
      {"technical subjects",
       "technical",
       {"science", "technology", "medicine"}},
  };
  p.tags = {
      Tag("biography",
          {"The biography section covers her early years.",
           "His biography was revised after new letters surfaced."},
          {"Born in a small village, she moved to the capital at twelve.",
           "He spent his final years teaching and writing memoirs."},
          0.25),
      Tag("award",
          {"The award ceremony took place in the capital.",
           "It received the highest award in its field."},
          {"It won the top prize at the international festival.",
           "The committee honored the work with its annual medal."},
          0.18),
      Tag("controversy",
          {"The controversy resurfaced during the anniversary.",
           "A controversy over attribution divided scholars."},
          {"Critics disputed the official account for years.",
           "Allegations about the project sparked public debate."},
          0.15),
      Tag("event",
          {"The event drew participants from sixty countries.",
           "The annual event has run continuously since 1950."},
          {"Thousands gathered for the opening ceremony.",
           "The festival was postponed twice before succeeding."},
          0.20),
      Tag("place",
          {"The place attracts millions of visitors yearly.",
           "The place was designated a protected site."},
          {"The site lies at the foot of a dormant volcano.",
           "The old quarter preserves its medieval layout."},
          0.22),
      Tag("organization",
          {"The organization operates in ninety countries.",
           "The organization was founded by three students."},
          {"The society maintains archives open to researchers.",
           "The foundation funds scholarships in the region."},
          0.17),
  };
  return p;
}

std::vector<DatasetProfile> AllProfiles() {
  return {SportsProfile(), AiProfile(), LawProfile(), WikiProfile()};
}

}  // namespace unify::corpus
