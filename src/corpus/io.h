#ifndef UNIFY_CORPUS_IO_H_
#define UNIFY_CORPUS_IO_H_

#include <string>

#include "common/status.h"
#include "corpus/corpus.h"
#include "embedding/vector_math.h"

namespace unify::corpus {

/// On-disk persistence for corpora and embedding caches, so the expensive
/// offline preprocessing (Section III-A) runs once and query sessions
/// reload it.
///
/// Format: a versioned, line-oriented text container — human-inspectable,
/// append-safe, stable across platforms. One header line, one line per
/// document (fields separated by the unit separator 0x1F, which never
/// occurs in generated text).

/// Writes `corpus` (documents + latent attributes; the profile is
/// re-derivable by name) to `path`, overwriting.
Status SaveCorpus(const Corpus& corpus, const std::string& path);

/// Loads a corpus previously written by SaveCorpus. The dataset profile is
/// looked up by the stored name (the four built-in profiles).
StatusOr<Corpus> LoadCorpus(const std::string& path);

/// Writes an embedding matrix (one vector per document id) to `path`.
Status SaveEmbeddings(const std::vector<embedding::Vec>& vecs,
                      const std::string& path);

/// Loads an embedding matrix written by SaveEmbeddings.
StatusOr<std::vector<embedding::Vec>> LoadEmbeddings(
    const std::string& path);

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_IO_H_
