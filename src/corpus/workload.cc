#include "corpus/workload.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "nlq/render.h"

namespace unify::corpus {

namespace {

using nlq::AggFunc;
using nlq::Condition;
using nlq::GroupMetric;
using nlq::QueryAst;
using nlq::SetOpKind;
using nlq::TaskKind;

int64_t AttrOf(const DocAttrs& a, const std::string& attr) {
  if (attr == "views") return a.views;
  if (attr == "score") return a.score;
  if (attr == "answers") return a.answers;
  if (attr == "comments") return a.comments;
  if (attr == "words") return a.words;
  return 0;
}

/// Rounds to 2 significant digits so thresholds read naturally
/// ("over 540 views", not "over 537").
int64_t RoundThreshold(double v) {
  if (v < 10) return std::max<int64_t>(1, std::llround(v));
  double mag = std::pow(10.0, std::floor(std::log10(v)) - 1);
  return static_cast<int64_t>(std::llround(v / mag) * mag);
}

/// Sampling helpers over the corpus vocabulary.
class LiteralSampler {
 public:
  LiteralSampler(const Corpus& corpus, Rng& rng)
      : corpus_(corpus), rng_(rng) {}

  std::string Category() {
    const auto& cats = corpus_.knowledge().categories();
    return cats[rng_.NextUint64(cats.size())];
  }
  std::string Tag() {
    const auto& tags = corpus_.knowledge().tags();
    return tags[rng_.NextUint64(tags.size())];
  }
  std::string Group() {
    const auto& groups = corpus_.knowledge().groups();
    return groups[rng_.NextUint64(groups.size())];
  }
  std::pair<std::string, std::string> TwoCategories() {
    auto a = Category();
    auto b = Category();
    while (b == a) b = Category();
    return {a, b};
  }
  std::pair<std::string, std::string> TwoTags() {
    auto a = Tag();
    auto b = Tag();
    while (b == a) b = Tag();
    return {a, b};
  }
  std::string Attr() {
    const auto& attrs = nlq::KnownAttributes();
    return attrs[rng_.NextUint64(attrs.size())];
  }

  /// A threshold near the chosen quantile of `attr` over the whole corpus.
  int64_t Threshold(const std::string& attr) {
    SampleStats stats;
    for (const auto& d : corpus_.docs()) {
      stats.Add(static_cast<double>(AttrOf(d.attrs, attr)));
    }
    double q = 0.3 + 0.55 * rng_.NextDouble();
    return RoundThreshold(std::max(1.0, stats.Quantile(q)));
  }

 private:
  const Corpus& corpus_;
  Rng& rng_;
};

/// Rejects instantiations whose ground truth is degenerate or unstable
/// (so accuracy measurement is meaningful).
bool GroundTruthStable(const QueryAst& q, const Corpus& corpus,
                       const Answer& gt) {
  const auto& kb = corpus.knowledge();
  std::vector<const Document*> docs;
  for (const auto& d : corpus.docs()) docs.push_back(&d);

  switch (q.task) {
    case TaskKind::kCount:
    case TaskKind::kSetCount:
      return gt.kind == Answer::Kind::kNumber && gt.number >= 5;
    case TaskKind::kAgg: {
      if (gt.kind != Answer::Kind::kNumber) return false;
      // Require enough support.
      QueryAst count = q;
      count.task = TaskKind::kCount;
      Answer c = EvaluateQueryOnDocs(count, docs, kb);
      return c.number >= 8;
    }
    case TaskKind::kTopK: {
      if (gt.kind != Answer::Kind::kList) return false;
      if (static_cast<int>(gt.list.size()) < q.top_k) return false;
      return true;
    }
    case TaskKind::kCompareCount:
    case TaskKind::kCompareAgg: {
      if (gt.kind != Answer::Kind::kText) return false;
      // Margin: the two sides must differ by at least 10%.
      auto value_of = [&](const nlq::DocSet& side) -> double {
        QueryAst s;
        s.entity = q.entity;
        s.docset = side;
        if (q.task == TaskKind::kCompareCount) {
          s.task = TaskKind::kCount;
        } else {
          s.task = TaskKind::kAgg;
          s.agg = q.agg;
          s.attr = q.attr;
          s.percentile = q.percentile;
        }
        Answer a = EvaluateQueryOnDocs(s, docs, kb);
        return a.kind == Answer::Kind::kNumber ? a.number : -1;
      };
      double a = value_of(q.docset);
      double b = value_of(q.docset_b);
      if (a < 0 || b < 0) return false;
      double hi = std::max(a, b);
      double lo = std::min(a, b);
      return hi > 0 && (hi - lo) / hi >= 0.10;
    }
    case TaskKind::kGroupArgBest: {
      if (gt.kind != Answer::Kind::kText) return false;
      // Margin: recompute per-group values and require a clear winner gap.
      std::map<std::string, std::vector<const Document*>> groups;
      std::vector<const Document*> filtered;
      for (const Document* d : docs) {
        bool ok = true;
        for (const auto& c : q.docset.conditions) {
          if (c.kind == Condition::Kind::kNumeric) {
            int64_t v = AttrOf(d->attrs, c.attribute);
            bool m = false;
            switch (c.cmp) {
              case Condition::Cmp::kGt:
                m = v > c.value;
                break;
              case Condition::Cmp::kGe:
                m = v >= c.value;
                break;
              case Condition::Cmp::kLt:
                m = v < c.value;
                break;
              case Condition::Cmp::kLe:
                m = v <= c.value;
                break;
              case Condition::Cmp::kEq:
                m = v == c.value;
                break;
              case Condition::Cmp::kBetween:
                m = v >= c.value && v <= c.value2;
                break;
            }
            if (!m) ok = false;
          } else if (!kb.Matches(c.text, d->attrs)) {
            ok = false;
          }
          if (!ok) break;
        }
        if (ok) filtered.push_back(d);
      }
      for (const Document* d : filtered) groups[d->attrs.category].push_back(d);
      std::vector<double> values;
      for (const auto& [name, members] : groups) {
        double value = -1;
        switch (q.metric.kind) {
          case GroupMetric::Kind::kCount:
            value = static_cast<double>(members.size());
            break;
          case GroupMetric::Kind::kAgg: {
            if (members.empty()) continue;
            SampleStats s;
            for (const Document* d : members)
              s.Add(static_cast<double>(AttrOf(d->attrs, q.metric.attr)));
            switch (q.metric.func) {
              case AggFunc::kSum:
                value = s.sum();
                break;
              case AggFunc::kAvg:
                value = s.Mean();
                break;
              case AggFunc::kMin:
                value = s.Min();
                break;
              case AggFunc::kMax:
                value = s.Max();
                break;
              case AggFunc::kMedian:
                value = s.Median();
                break;
              case AggFunc::kPercentile:
                value = s.Quantile(q.percentile / 100.0);
                break;
            }
            break;
          }
          case GroupMetric::Kind::kRatio: {
            size_t num = 0;
            size_t den = 0;
            for (const Document* d : members) {
              if (q.metric.num.cond && kb.Matches(q.metric.num.cond->text,
                                                  d->attrs))
                ++num;
              if (q.metric.den.cond && kb.Matches(q.metric.den.cond->text,
                                                  d->attrs))
                ++den;
            }
            if (den < 3) continue;  // unstable tiny denominators
            value = static_cast<double>(num) / static_cast<double>(den);
            break;
          }
        }
        if (value >= 0) values.push_back(value);
      }
      if (values.size() < 2) return false;
      std::sort(values.begin(), values.end());
      if (q.best_is_max) {
        double best = values[values.size() - 1];
        double second = values[values.size() - 2];
        return best > 0 && (best - second) / best >= 0.08;
      }
      double best = values[0];
      double second = values[1];
      return second > 0 && (second - best) / second >= 0.08;
    }
    case TaskKind::kRatio: {
      if (gt.kind != Answer::Kind::kNumber) return false;
      QueryAst den = q;
      den.task = TaskKind::kCount;
      den.docset = q.docset_b;
      Answer d = EvaluateQueryOnDocs(den, docs, kb);
      return d.kind == Answer::Kind::kNumber && d.number >= 10;
    }
  }
  return false;
}

/// Builds one instantiation of template `tpl` (0-based). Returns an AST;
/// validation happens in the caller.
QueryAst Instantiate(int tpl, const Corpus& corpus, Rng& rng) {
  LiteralSampler lit(corpus, rng);
  QueryAst q;
  q.entity = corpus.entity();
  const std::string kind = corpus.category_kind();
  switch (tpl) {
    case 0:  // T1: count by category
      q.task = TaskKind::kCount;
      q.docset.conditions = {Condition::Semantic(lit.Category())};
      break;
    case 1: {  // T2: count by category + numeric
      q.task = TaskKind::kCount;
      std::string attr = "views";
      q.docset.conditions = {
          Condition::Semantic(lit.Category()),
          Condition::Numeric(attr, Condition::Cmp::kGt, lit.Threshold(attr))};
      break;
    }
    case 2: {  // T3: count by tag + numeric
      q.task = TaskKind::kCount;
      std::string attr = lit.Attr();
      q.docset.conditions = {
          Condition::Semantic(lit.Tag()),
          Condition::Numeric(attr, Condition::Cmp::kGt, lit.Threshold(attr))};
      break;
    }
    case 3:  // T4: count by group
      q.task = TaskKind::kCount;
      q.docset.conditions = {Condition::Semantic(lit.Group())};
      break;
    case 4:  // T5: avg views by category
      q.task = TaskKind::kAgg;
      q.agg = AggFunc::kAvg;
      q.attr = "views";
      q.docset.conditions = {Condition::Semantic(lit.Category())};
      break;
    case 5:  // T6: sum answers by category
      q.task = TaskKind::kAgg;
      q.agg = AggFunc::kSum;
      q.attr = "answers";
      q.docset.conditions = {Condition::Semantic(lit.Category())};
      break;
    case 6:  // T7: max views by tag
      q.task = TaskKind::kAgg;
      q.agg = AggFunc::kMax;
      q.attr = "views";
      q.docset.conditions = {Condition::Semantic(lit.Tag())};
      break;
    case 7:  // T8: median score by category
      q.task = TaskKind::kAgg;
      q.agg = AggFunc::kMedian;
      q.attr = "score";
      q.docset.conditions = {Condition::Semantic(lit.Category())};
      break;
    case 8:  // T9: 90th percentile views by group
      q.task = TaskKind::kAgg;
      q.agg = AggFunc::kPercentile;
      q.percentile = 90;
      q.attr = "views";
      q.docset.conditions = {Condition::Semantic(lit.Group())};
      break;
    case 9: {  // T10: min words with score filter
      q.task = TaskKind::kAgg;
      q.agg = AggFunc::kMin;
      q.attr = "words";
      q.docset.conditions = {
          Condition::Semantic(lit.Category()),
          Condition::Numeric("score", Condition::Cmp::kGe,
                             lit.Threshold("score"))};
      break;
    }
    case 10:  // T11: top-5 by views
      q.task = TaskKind::kTopK;
      q.top_k = 5;
      q.top_desc = true;
      q.attr = "views";
      q.docset.conditions = {Condition::Semantic(lit.Category())};
      break;
    case 11: {  // T12: top-3 by score with views filter
      q.task = TaskKind::kTopK;
      q.top_k = 3;
      q.top_desc = true;
      q.attr = "score";
      q.docset.conditions = {
          Condition::Semantic(lit.Tag()),
          Condition::Numeric("views", Condition::Cmp::kGt,
                             lit.Threshold("views"))};
      break;
    }
    case 12: {  // T13: compare counts of two categories
      q.task = TaskKind::kCompareCount;
      auto [a, b] = lit.TwoCategories();
      q.docset.conditions = {Condition::Semantic(a)};
      q.docset_b.conditions = {Condition::Semantic(b)};
      break;
    }
    case 13: {  // T14: compare counts of two tags
      q.task = TaskKind::kCompareCount;
      auto [a, b] = lit.TwoTags();
      q.docset.conditions = {Condition::Semantic(a)};
      q.docset_b.conditions = {Condition::Semantic(b)};
      break;
    }
    case 14: {  // T15: compare avg views of two categories
      q.task = TaskKind::kCompareAgg;
      q.agg = AggFunc::kAvg;
      q.attr = "views";
      auto [a, b] = lit.TwoCategories();
      q.docset.conditions = {Condition::Semantic(a)};
      q.docset_b.conditions = {Condition::Semantic(b)};
      break;
    }
    case 15: {  // T16: arg-max group count with numeric filter
      q.task = TaskKind::kGroupArgBest;
      q.group_attr = kind;
      q.best_is_max = true;
      q.metric.kind = GroupMetric::Kind::kCount;
      q.docset.conditions = {Condition::Numeric(
          "views", Condition::Cmp::kGt, lit.Threshold("views"))};
      break;
    }
    case 16: {  // T17: arg-best group average attribute
      q.task = TaskKind::kGroupArgBest;
      q.group_attr = kind;
      q.best_is_max = rng.Bernoulli(0.5);
      q.metric.kind = GroupMetric::Kind::kAgg;
      q.metric.func = AggFunc::kAvg;
      q.metric.attr = "views";
      q.docset.conditions = {Condition::Semantic(lit.Tag())};
      break;
    }
    case 17: {  // T18: flagship arg-max group ratio
      q.task = TaskKind::kGroupArgBest;
      q.group_attr = kind;
      q.best_is_max = true;
      q.metric.kind = GroupMetric::Kind::kRatio;
      auto [a, b] = lit.TwoTags();
      q.metric.num.cond = Condition::Semantic(a);
      q.metric.den.cond = Condition::Semantic(b);
      q.docset.conditions = {
          Condition::Semantic(lit.Group()),
          Condition::Numeric("views", Condition::Cmp::kGt,
                             lit.Threshold("views"))};
      break;
    }
    case 18: {  // T19: ratio of two tag counts
      q.task = TaskKind::kRatio;
      auto [a, b] = lit.TwoTags();
      q.docset.conditions = {Condition::Semantic(a)};
      q.docset_b.conditions = {Condition::Semantic(b)};
      break;
    }
    case 19: {  // T20: set operation count
      q.task = TaskKind::kSetCount;
      int which = static_cast<int>(rng.NextUint64(3));
      q.set_op = which == 0   ? SetOpKind::kUnion
                 : which == 1 ? SetOpKind::kIntersect
                              : SetOpKind::kDifference;
      auto [a, b] = lit.TwoTags();
      if (q.set_op == SetOpKind::kIntersect || rng.Bernoulli(0.5)) {
        q.docset.conditions = {Condition::Semantic(lit.Category())};
        q.docset_b.conditions = {Condition::Semantic(a)};
      } else {
        q.docset.conditions = {Condition::Semantic(a)};
        q.docset_b.conditions = {Condition::Semantic(b)};
      }
      break;
    }
    default:
      UNIFY_FATAL() << "unknown template " << tpl;
  }
  return q;
}

}  // namespace

std::vector<QueryCase> GenerateWorkload(const Corpus& corpus,
                                        const WorkloadOptions& options) {
  std::vector<QueryCase> out;
  Rng rng(HashCombine(options.seed, StableHash64(corpus.name())));
  int next_id = 0;
  constexpr int kNumTemplates = 20;
  for (int tpl = 0; tpl < kNumTemplates; ++tpl) {
    for (int rep = 0; rep < options.per_template; ++rep) {
      QueryCase qc;
      bool ok = false;
      for (int attempt = 0; attempt < 300 && !ok; ++attempt) {
        QueryAst ast = Instantiate(tpl, corpus, rng);
        Answer gt = EvaluateQuery(ast, corpus);
        if (!GroundTruthStable(ast, corpus, gt)) continue;
        qc.ast = std::move(ast);
        qc.ground_truth = std::move(gt);
        ok = true;
      }
      UNIFY_CHECK(ok) << "template " << tpl
                      << " could not be instantiated on " << corpus.name();
      qc.id = next_id++;
      qc.template_id = tpl;
      qc.style = static_cast<uint32_t>(qc.id);
      qc.text = nlq::Render(qc.ast, qc.style);
      out.push_back(std::move(qc));
    }
  }
  return out;
}

std::vector<HistoricalPredicate> GenerateHistoricalPredicates(
    const Corpus& corpus, int count, uint64_t seed) {
  Rng rng(HashCombine(seed, StableHash64(corpus.name() + "|hist")));
  std::vector<HistoricalPredicate> out;
  const auto& kb = corpus.knowledge();
  std::vector<std::string> phrases;
  for (const auto& c : kb.categories()) phrases.push_back(c);
  for (const auto& t : kb.tags()) phrases.push_back(t);
  for (const auto& g : kb.groups()) phrases.push_back(g);
  for (int i = 0; i < count; ++i) {
    const std::string& phrase = phrases[rng.NextUint64(phrases.size())];
    HistoricalPredicate hp;
    hp.condition = Condition::Semantic(phrase);
    hp.phrase = phrase;
    size_t n = 0;
    for (const auto& d : corpus.docs()) {
      if (kb.Matches(phrase, d.attrs)) ++n;
    }
    hp.selectivity = static_cast<double>(n) /
                     static_cast<double>(std::max<size_t>(1, corpus.size()));
    out.push_back(std::move(hp));
  }
  return out;
}

}  // namespace unify::corpus
