#ifndef UNIFY_CORPUS_ANSWER_H_
#define UNIFY_CORPUS_ANSWER_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "nlq/ast.h"

namespace unify::corpus {

/// The result of an analytics query: a number, a label/text, or a list of
/// document titles. `kNone` marks undefined results (empty aggregates,
/// zero denominators, failed executions).
struct Answer {
  enum class Kind { kNone, kNumber, kText, kList };
  Kind kind = Kind::kNone;
  double number = 0.0;
  std::string text;
  std::vector<std::string> list;

  static Answer None() { return Answer{}; }
  static Answer Number(double v) {
    Answer a;
    a.kind = Kind::kNumber;
    a.number = v;
    return a;
  }
  static Answer Text(std::string t) {
    Answer a;
    a.kind = Kind::kText;
    a.text = std::move(t);
    return a;
  }
  static Answer List(std::vector<std::string> items) {
    Answer a;
    a.kind = Kind::kList;
    a.list = std::move(items);
    return a;
  }

  std::string ToString() const;

  /// Accuracy criterion used in the experiments: numbers match within
  /// `rel_tol` relative error, text matches case-insensitively, lists
  /// match as sets (case-insensitive).
  static bool Equivalent(const Answer& a, const Answer& b,
                         double rel_tol = 0.05);
};

/// Exact ground-truth evaluation of `q` over the whole corpus, computed
/// directly from latent attributes (the paper computed ground truths
/// manually). `q` must be an initial query (no variable references).
Answer EvaluateQuery(const nlq::QueryAst& q, const Corpus& corpus);

/// Evaluation over a document subset, with counts and sums extrapolated by
/// `count_scale` (1.0 = no extrapolation). Used to model what baselines
/// that only see part of the data (RAG context, 20% sample) can possibly
/// answer.
Answer EvaluateQueryOnDocs(const nlq::QueryAst& q,
                           const std::vector<const Document*>& docs,
                           const KnowledgeBase& kb, double count_scale = 1.0);

}  // namespace unify::corpus

#endif  // UNIFY_CORPUS_ANSWER_H_
