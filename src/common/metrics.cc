#include "common/metrics.h"

#include <cstdio>
#include <sstream>

namespace unify {

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    double d = value - (it == earlier.counters.end() ? 0.0 : it->second);
    if (d != 0.0) delta.counters[name] = d;
  }
  delta.gauges = gauges;
  delta.histograms = histograms;
  return delta;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  char buf[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%-34s %.6g\n", name.c_str(), value);
    os << buf;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%-34s %.6g (gauge)\n", name.c_str(),
                  value);
    os << buf;
  }
  for (const auto& [name, stats] : histograms) {
    if (stats.count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-34s n=%zu mean=%.6g p50=%.6g p99=%.6g\n", name.c_str(),
                  stats.count(), stats.Mean(), stats.Quantile(0.5),
                  stats.Quantile(0.99));
    os << buf;
  }
  return os.str();
}

void MetricsRegistry::AddCounter(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Add(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histograms = histograms_;
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace unify
