#include "common/metrics.h"

#include <cstdio>
#include <sstream>

namespace unify {

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    double d = value - (it == earlier.counters.end() ? 0.0 : it->second);
    if (d != 0.0) delta.counters[name] = d;
  }
  delta.gauges = gauges;
  delta.histograms = histograms;
  return delta;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  char buf[160];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%-34s %.6g\n", name.c_str(), value);
    os << buf;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "%-34s %.6g (gauge)\n", name.c_str(),
                  value);
    os << buf;
  }
  for (const auto& [name, stats] : histograms) {
    if (stats.count() == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%-34s n=%zu mean=%.6g p50=%.6g p99=%.6g\n", name.c_str(),
                  stats.count(), stats.Mean(), stats.Quantile(0.5),
                  stats.Quantile(0.99));
    os << buf;
  }
  return os.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted names are mapped into that alphabet under a `unify_` prefix.
std::string PrometheusName(const std::string& name) {
  std::string out = "unify_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendHelpType(std::ostringstream& os, const std::string& prom,
                    const std::string& name, const char* type) {
  os << "# HELP " << prom << " Unify metric " << name << "\n";
  os << "# TYPE " << prom << " " << type << "\n";
}

/// Splits a registry name of the form `base{key="value"}` (composed by
/// LabeledMetricName; the label block is already escaped) into the base
/// name and the label block including braces. Names without `{` keep an
/// empty label block.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

}  // namespace

std::string LabeledMetricName(const std::string& base, const std::string& key,
                              const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped.push_back(c);
    }
  }
  return base + "{" + key + "=\"" + escaped + "\"}";
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream os;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return std::string(buf);
  };
  // All labeled samples of one base metric share a single HELP/TYPE
  // header. The map is name-ordered and `{` sorts after every character
  // the sanitized names use, so a base's labeled series are contiguous.
  std::string base, labels, last_header;
  for (const auto& [name, value] : counters) {
    SplitLabels(name, &base, &labels);
    std::string prom = PrometheusName(base);
    if (labels.empty() || prom != last_header) {
      AppendHelpType(os, prom, base, "counter");
    }
    last_header = prom;
    os << prom << labels << " " << num(value) << "\n";
  }
  last_header.clear();
  for (const auto& [name, value] : gauges) {
    SplitLabels(name, &base, &labels);
    std::string prom = PrometheusName(base);
    if (labels.empty() || prom != last_header) {
      AppendHelpType(os, prom, base, "gauge");
    }
    last_header = prom;
    os << prom << labels << " " << num(value) << "\n";
  }
  last_header.clear();
  for (const auto& [name, hist] : histograms) {
    if (hist.count() == 0) continue;
    SplitLabels(name, &base, &labels);
    std::string prom = PrometheusName(base);
    if (labels.empty() || prom != last_header) {
      AppendHelpType(os, prom, base, "summary");
    }
    last_header = prom;
    // Merge the series labels with the quantile label: `{a="b"}` becomes
    // `{a="b",quantile="0.5"}`.
    const std::string inner =
        labels.empty() ? std::string() : labels.substr(1, labels.size() - 2);
    for (double q : {0.5, 0.9, 0.99}) {
      os << prom << "{" << inner << (inner.empty() ? "" : ",")
         << "quantile=\"" << num(q) << "\"} " << num(hist.Quantile(q))
         << "\n";
    }
    os << prom << "_sum" << labels << " " << num(hist.sum()) << "\n";
    os << prom << "_count" << labels << " " << hist.count() << "\n";
  }
  return os.str();
}

void MetricsRegistry::AddCounter(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].Add(value);
}

double MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  snap.gauges = gauges_;
  snap.histograms = histograms_;
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {
thread_local MetricsRegistry* t_metrics_sink = nullptr;
}  // namespace

MetricsRegistry* MetricsRegistry::ThreadSink() { return t_metrics_sink; }

MetricsRegistry::ScopedSink::ScopedSink(MetricsRegistry* sink)
    : prev_(t_metrics_sink) {
  t_metrics_sink = sink;
}

MetricsRegistry::ScopedSink::~ScopedSink() { t_metrics_sink = prev_; }

void MetricAddCounter(const std::string& name, double delta) {
  MetricsRegistry::Global().AddCounter(name, delta);
  if (t_metrics_sink != nullptr) t_metrics_sink->AddCounter(name, delta);
}

void MetricSetGauge(const std::string& name, double value) {
  MetricsRegistry::Global().SetGauge(name, value);
  if (t_metrics_sink != nullptr) t_metrics_sink->SetGauge(name, value);
}

void MetricObserve(const std::string& name, double value) {
  MetricsRegistry::Global().Observe(name, value);
  if (t_metrics_sink != nullptr) t_metrics_sink->Observe(name, value);
}

}  // namespace unify
