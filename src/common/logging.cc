#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace unify {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes log lines from concurrent operator execution.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << "\n";
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal_logging
}  // namespace unify
