#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

namespace unify {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Serializes log lines (and sink invocations) from concurrent operator
// execution.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Guarded by LogMutex(). Leaked like the mutex so logging stays safe in
// static destructors.
LogSink*& SinkSlot() {
  static LogSink* sink = new LogSink;
  return sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

std::atomic<int> g_next_thread_ordinal{0};

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  *SinkSlot() = std::move(sink);
}

int LogThreadOrdinal() {
  thread_local int ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed) + 1;
  return ordinal;
}

namespace internal_logging {

void EmitLogLine(LogLevel level, const std::string& line,
                 bool to_stderr_too) {
  std::lock_guard<std::mutex> lock(LogMutex());
  LogSink& sink = *SinkSlot();
  if (sink) {
    sink(level, line);
    if (!to_stderr_too) return;
  }
  std::cerr << line << "\n";
  if (to_stderr_too) std::cerr.flush();
}

std::string LogPrefix(const char* level_tag, const char* file, int line) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "[%s %04d-%02d-%02d %02d:%02d:%02d.%03d t%d %s:%d] ",
                level_tag, tm_utc.tm_year + 1900, tm_utc.tm_mon + 1,
                tm_utc.tm_mday, tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec,
                millis, LogThreadOrdinal(), Basename(file), line);
  return buf;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()), level_(level) {
  if (enabled_) stream_ << LogPrefix(LevelName(level), file, line);
}

LogMessage::~LogMessage() {
  if (enabled_) EmitLogLine(level_, stream_.str(), /*to_stderr_too=*/false);
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << LogPrefix("FATAL", file, line);
}

FatalLogMessage::~FatalLogMessage() {
  EmitLogLine(LogLevel::kError, stream_.str(), /*to_stderr_too=*/true);
  std::abort();
}

}  // namespace internal_logging
}  // namespace unify
