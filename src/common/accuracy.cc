#include "common/accuracy.h"

#include <cstdio>
#include <sstream>

#include "common/metrics.h"
#include "common/telemetry_names.h"

namespace unify {

namespace {

void AppendHistLine(std::ostringstream& os, const std::string& label,
                    const Histogram& h) {
  char buf[192];
  if (h.count() == 0) {
    std::snprintf(buf, sizeof(buf), "  %-28s (no samples)\n", label.c_str());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "  %-28s n=%-6zu p50=%-9.4g p90=%-9.4g max=%.4g\n",
                  label.c_str(), h.count(), h.Quantile(0.5), h.Quantile(0.9),
                  h.Max());
  }
  os << buf;
}

}  // namespace

void AccuracyLedger::RecordSceQError(const std::string& method,
                                     double qerror) {
  MetricObserve(std::string(telemetry::kMetricSceQError) + "." + method,
                qerror);
  std::lock_guard<std::mutex> lock(mu_);
  data_.sce_qerror[method].Add(qerror);
}

void AccuracyLedger::RecordCardQError(double qerror) {
  MetricObserve(telemetry::kMetricCardQError, qerror);
  std::lock_guard<std::mutex> lock(mu_);
  data_.card_qerror.Add(qerror);
}

void AccuracyLedger::RecordMakespanRelError(double rel_error) {
  MetricObserve(telemetry::kMetricMakespanRelError, rel_error);
  std::lock_guard<std::mutex> lock(mu_);
  data_.makespan_rel_error.Add(rel_error);
}

void AccuracyLedger::RecordDollarsRelError(double rel_error) {
  MetricObserve(telemetry::kMetricDollarsRelError, rel_error);
  std::lock_guard<std::mutex> lock(mu_);
  data_.dollars_rel_error.Add(rel_error);
}

void AccuracyLedger::RecordImplChoice(const std::string& impl_name,
                                      bool hindsight_optimal) {
  MetricAddCounter(std::string(telemetry::kMetricImplChosen) + "." +
                   impl_name);
  MetricAddCounter(hindsight_optimal
                       ? telemetry::kMetricImplChoiceOptimal
                       : telemetry::kMetricImplChoiceSuboptimal);
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.impl_chosen[impl_name];
  if (hindsight_optimal) {
    ++data_.impl_optimal;
  } else {
    ++data_.impl_suboptimal;
  }
}

void AccuracyLedger::RecordReplanConsidered() {
  MetricAddCounter(telemetry::kMetricReplanConsidered);
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.replan_considered;
}

void AccuracyLedger::RecordReplanTriggered() {
  MetricAddCounter(telemetry::kMetricReplanTriggered);
  std::lock_guard<std::mutex> lock(mu_);
  ++data_.replan_triggered;
}

void AccuracyLedger::RecordReplanOutcome(bool improved) {
  if (improved) MetricAddCounter(telemetry::kMetricReplanImproved);
  std::lock_guard<std::mutex> lock(mu_);
  if (improved) {
    ++data_.replan_improved;
  } else {
    ++data_.replan_not_improved;
  }
}

AccuracyLedger::Snapshot AccuracyLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

std::string AccuracyLedger::ToText() const {
  Snapshot snap = snapshot();
  std::ostringstream os;
  os << "prediction accuracy\n";
  os << "SCE q-error by method:\n";
  if (snap.sce_qerror.empty()) os << "  (no estimates recorded)\n";
  for (const auto& [method, hist] : snap.sce_qerror) {
    AppendHistLine(os, method, hist);
  }
  os << "plan vs execution:\n";
  AppendHistLine(os, "node card q-error", snap.card_qerror);
  AppendHistLine(os, "makespan rel error", snap.makespan_rel_error);
  AppendHistLine(os, "dollars rel error", snap.dollars_rel_error);
  int64_t audited = snap.impl_optimal + snap.impl_suboptimal;
  os << "impl choice (hindsight audit):\n";
  if (audited == 0) {
    os << "  (no executed nodes audited)\n";
  } else {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  optimal %lld / %lld (%.1f%%)\n",
                  static_cast<long long>(snap.impl_optimal),
                  static_cast<long long>(audited),
                  100.0 * static_cast<double>(snap.impl_optimal) /
                      static_cast<double>(audited));
    os << buf;
    for (const auto& [impl, count] : snap.impl_chosen) {
      std::snprintf(buf, sizeof(buf), "  chosen %-22s %lld\n", impl.c_str(),
                    static_cast<long long>(count));
      os << buf;
    }
  }
  os << "mid-query replanning:\n";
  if (snap.replan_considered == 0) {
    os << "  (no replans considered)\n";
  } else {
    int64_t audited = snap.replan_improved + snap.replan_not_improved;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  considered %lld, adopted %lld, improved %lld/%lld\n",
                  static_cast<long long>(snap.replan_considered),
                  static_cast<long long>(snap.replan_triggered),
                  static_cast<long long>(snap.replan_improved),
                  static_cast<long long>(audited));
    os << buf;
  }
  return os.str();
}

void AccuracyLedger::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = Snapshot();
}

AccuracyLedger& AccuracyLedger::Global() {
  static AccuracyLedger* ledger = new AccuracyLedger();
  return *ledger;
}

}  // namespace unify
