#ifndef UNIFY_COMMON_THREAD_POOL_H_
#define UNIFY_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unify {

/// A fixed-size worker pool executing `std::function<void()>` tasks FIFO.
///
/// Used by the execution module to run independent plan operators in
/// parallel (the paper's "Parallel Topological Execution", Section III-C).
/// The destructor drains outstanding tasks before joining.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Waits for all queued tasks, then joins the workers.
  ~ThreadPool();

  /// Enqueues `task` for execution.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace unify

#endif  // UNIFY_COMMON_THREAD_POOL_H_
