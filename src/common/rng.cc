#include "common/rng.h"

#include <cmath>

namespace unify {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t StableHash64(std::string_view data) {
  // FNV-1a over bytes, then a SplitMix64 finisher for avalanche.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  uint64_t state = h;
  return SplitMix64(state);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  uint64_t state = a;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(state);
}

uint64_t Rng::Next() {
  // xoshiro256++
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  if (n == 0) return 0;
  // Lemire's multiply-shift with rejection for unbiased results.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = (~n + 1) % n;  // == 2^64 mod n
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller.
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return NextUint64(n);
  // Cumulative inverse transform. n is small (categories, templates) in all
  // our uses, so O(n) is acceptable.
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = NextDouble() * total;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return NextUint64(weights.size());
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0 ? weights[i] : 0);
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  // Partial Fisher-Yates over an index array. Memory O(n); our corpora are
  // a few thousand documents so this is fine.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + NextUint64(n - i);
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

Rng Rng::Fork(uint64_t tag) const { return Rng(HashCombine(seed_, tag)); }

}  // namespace unify
