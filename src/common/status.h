#ifndef UNIFY_COMMON_STATUS_H_
#define UNIFY_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace unify {

/// Canonical error codes, modeled after absl::StatusCode / RocksDB codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight error-or-success result, used instead of exceptions
/// throughout the library (Google style: exceptions are not used).
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries an
/// error code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per canonical code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error result. Holds either a `T` or a non-OK `Status`.
///
/// Usage:
///   StatusOr<int> Parse(...);
///   auto r = Parse(...);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl.
      : rep_(std::move(status)) {}
  /// Constructs from a value.
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl.
      : rep_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// The held value. Requires `ok()`.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when in error state.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace unify

/// Propagates a non-OK status from an expression, absl-style.
#define UNIFY_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::unify::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Evaluates a StatusOr expression; on error returns its status, otherwise
/// assigns the value to `lhs`.
#define UNIFY_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value();

#define UNIFY_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define UNIFY_ASSIGN_OR_RETURN_NAME(a, b) UNIFY_ASSIGN_OR_RETURN_CONCAT(a, b)
#define UNIFY_ASSIGN_OR_RETURN(lhs, expr) \
  UNIFY_ASSIGN_OR_RETURN_IMPL(            \
      UNIFY_ASSIGN_OR_RETURN_NAME(_status_or_, __LINE__), lhs, expr)

#endif  // UNIFY_COMMON_STATUS_H_
