#ifndef UNIFY_COMMON_ACCURACY_H_
#define UNIFY_COMMON_ACCURACY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace unify {

/// Process-wide ledger of prediction accuracy: how well the semantic
/// cardinality estimator, the per-node cardinality propagation, and the
/// cost model's makespan/dollar predictions match what execution actually
/// measured. Hooks in CardinalityEstimator (per-estimate SCE q-error
/// against the simulated corpus's latent ground truth) and in
/// UnifySystem::Answer (per-node q-error, makespan/dollars relative
/// error, hindsight impl-choice audit) feed it; benches and tests read it
/// to assert calibration bounds instead of only speed
/// (bench/bench_accuracy.cc, docs/observability.md "Prediction
/// accuracy").
///
/// Every Record* call also mirrors the observation into the metrics
/// registry (via the Metric* helpers, so per-query sinks see it too)
/// under the corresponding telemetry name — the ledger adds bounded
/// per-method histograms and the chosen-vs-best counters in one
/// resettable place.
class AccuracyLedger {
 public:
  struct Snapshot {
    /// SCE q-error per estimation method name (SceMethodName).
    std::map<std::string, Histogram> sce_qerror;
    /// Per-executed-node q-error of est_out_card vs measured cardinality.
    Histogram card_qerror;
    /// |predicted - measured| / measured execution makespan.
    Histogram makespan_rel_error;
    /// |predicted - measured| / measured execution dollars.
    Histogram dollars_rel_error;
    /// Executed-node count per chosen physical impl (PhysicalImplName).
    std::map<std::string, int64_t> impl_chosen;
    /// Nodes whose chosen impl is/isn't the cost-model argmin when
    /// re-costed with the cardinalities execution measured.
    int64_t impl_optimal = 0;
    int64_t impl_suboptimal = 0;
    /// Mid-query re-optimization outcomes (docs/replanning.md): replans
    /// considered (trigger fired), suffixes adopted, and — audited at
    /// query completion — adopted replans whose measured suffix cost beat
    /// the pre-replan suffix estimate.
    int64_t replan_considered = 0;
    int64_t replan_triggered = 0;
    int64_t replan_improved = 0;
    int64_t replan_not_improved = 0;
  };

  AccuracyLedger() = default;
  AccuracyLedger(const AccuracyLedger&) = delete;
  AccuracyLedger& operator=(const AccuracyLedger&) = delete;

  void RecordSceQError(const std::string& method, double qerror);
  void RecordCardQError(double qerror);
  void RecordMakespanRelError(double rel_error);
  void RecordDollarsRelError(double rel_error);
  void RecordImplChoice(const std::string& impl_name, bool hindsight_optimal);
  void RecordReplanConsidered();
  void RecordReplanTriggered();
  void RecordReplanOutcome(bool improved);

  Snapshot snapshot() const;

  /// Human-readable calibration report (the shell's \accuracy command).
  std::string ToText() const;

  /// Drops everything (tests and benches that need isolated windows).
  void Reset();

  /// The process-wide ledger all hooks write to.
  static AccuracyLedger& Global();

 private:
  mutable std::mutex mu_;
  Snapshot data_;
};

}  // namespace unify

#endif  // UNIFY_COMMON_ACCURACY_H_
