#ifndef UNIFY_COMMON_LOGGING_H_
#define UNIFY_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace unify {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to INFO.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives every emitted log line (already formatted, no trailing
/// newline) instead of stderr. Tests install one to assert on log output
/// without capturing stderr; serving processes can forward lines to their
/// own collector. FATAL lines go to the sink AND stderr (the process is
/// about to abort — the line must not be lost in a sink that buffers).
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Installs `sink` as the destination for log lines; pass nullptr to
/// restore stderr. Thread-safe; the sink is invoked under the logging
/// mutex, so it needs no synchronization of its own but must not log.
void SetLogSink(LogSink sink);

/// A small stable ordinal for the calling thread (1, 2, 3, ... in first-
/// log order), printed as `t<N>` in every log line so interleaved lines
/// from concurrent operator execution can be attributed to their worker.
int LogThreadOrdinal();

namespace internal_logging {

/// Emits one formatted line to the installed sink (stderr by default).
/// `to_stderr_too` is set for FATAL lines.
void EmitLogLine(LogLevel level, const std::string& line,
                 bool to_stderr_too);

/// Formats the `[<level> <UTC wall clock> t<ordinal> <file>:<line>]`
/// prefix shared by LogMessage and FatalLogMessage.
std::string LogPrefix(const char* level_tag, const char* file, int line);

/// Accumulates one log line and emits it to the sink on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message (if FATAL-worthy) and aborts the process.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace unify

#define UNIFY_LOG(level)                                             \
  ::unify::internal_logging::LogMessage(::unify::LogLevel::k##level, \
                                        __FILE__, __LINE__)

/// Logs and aborts. Use for invariant violations that indicate bugs.
#define UNIFY_FATAL() \
  ::unify::internal_logging::FatalLogMessage(__FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard internal invariants, not user input (user input errors are
/// reported via Status).
#define UNIFY_CHECK(cond) \
  if (!(cond)) UNIFY_FATAL() << "Check failed: " #cond " "

#define UNIFY_CHECK_OK(expr)                                   \
  do {                                                         \
    ::unify::Status _st = (expr);                              \
    if (!_st.ok()) UNIFY_FATAL() << "Status not OK: " << _st;  \
  } while (0)

#endif  // UNIFY_COMMON_LOGGING_H_
