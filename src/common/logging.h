#ifndef UNIFY_COMMON_LOGGING_H_
#define UNIFY_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace unify {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Defaults to INFO.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Emits the message (if FATAL-worthy) and aborts the process.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace unify

#define UNIFY_LOG(level)                                             \
  ::unify::internal_logging::LogMessage(::unify::LogLevel::k##level, \
                                        __FILE__, __LINE__)

/// Logs and aborts. Use for invariant violations that indicate bugs.
#define UNIFY_FATAL() \
  ::unify::internal_logging::FatalLogMessage(__FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard internal invariants, not user input (user input errors are
/// reported via Status).
#define UNIFY_CHECK(cond) \
  if (!(cond)) UNIFY_FATAL() << "Check failed: " #cond " "

#define UNIFY_CHECK_OK(expr)                                   \
  do {                                                         \
    ::unify::Status _st = (expr);                              \
    if (!_st.ok()) UNIFY_FATAL() << "Status not OK: " << _st;  \
  } while (0)

#endif  // UNIFY_COMMON_LOGGING_H_
