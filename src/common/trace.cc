#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>

namespace unify {

namespace {

/// Shortest decimal that round-trips a double exactly — attribute values
/// carry accounting totals that tests compare to 1e-9.
std::string FormatFull(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatMs(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2fms", us / 1000.0);
  return buf;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Trace::Trace() : epoch_(std::chrono::steady_clock::now()) {}

double Trace::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Trace::ThreadOrdinalLocked() {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& [tid, ordinal] : tids_) {
    if (tid == self) return ordinal;
  }
  tids_.emplace_back(self, static_cast<int>(tids_.size()));
  return tids_.back().second;
}

SpanId Trace::StartSpan(std::string name, SpanId parent) {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan span;
  span.id = static_cast<SpanId>(spans_.size());
  span.parent =
      (parent >= 0 && parent < span.id) ? parent : kNoSpan;
  span.name = std::move(name);
  span.wall_start_us = now;
  span.wall_end_us = now;
  span.tid = ThreadOrdinalLocked();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::EndSpan(SpanId id) {
  const double now = NowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].wall_end_us = now;
}

void Trace::AddAttr(SpanId id, const std::string& key,
                    const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].attrs.emplace_back(key, value);
}

void Trace::AddAttr(SpanId id, const std::string& key, double value) {
  AddAttr(id, key, FormatFull(value));
}

void Trace::AddAttr(SpanId id, const std::string& key, int64_t value) {
  AddAttr(id, key, std::to_string(value));
}

void Trace::SetVirtualInterval(SpanId id, double start, double end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<SpanId>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].virt_start = start;
  spans_[static_cast<size_t>(id)].virt_end = std::max(start, end);
}

std::vector<TraceSpan> Trace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Trace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::string Trace::ToChromeJson() const {
  const std::vector<TraceSpan> spans = this->spans();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
        "\"args\":{\"name\":\"wall clock\"}}";
  os << ",{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
        "\"args\":{\"name\":\"virtual clock\"}}";
  auto args_json = [](const TraceSpan& span) {
    // Last occurrence wins for duplicate keys (JSON objects need unique
    // keys; viewers would otherwise pick one arbitrarily).
    std::string out = "{";
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      bool last = true;
      for (size_t j = i + 1; j < span.attrs.size(); ++j) {
        if (span.attrs[j].first == span.attrs[i].first) {
          last = false;
          break;
        }
      }
      if (!last) continue;
      if (out.size() > 1) out += ',';
      out += '"' + JsonEscape(span.attrs[i].first) + "\":\"" +
             JsonEscape(span.attrs[i].second) + '"';
    }
    out += '}';
    return out;
  };
  for (const TraceSpan& span : spans) {
    os << ",{\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid << ",\"ts\":"
       << FormatFull(span.wall_start_us) << ",\"dur\":"
       << FormatFull(std::max(0.0, span.wall_end_us - span.wall_start_us))
       << ",\"name\":\"" << JsonEscape(span.name) << "\",\"args\":"
       << args_json(span) << "}";
    if (span.virt_start >= 0) {
      // The virtual timeline: seconds rendered as microseconds so the
      // viewer's "ms" display reads virtual milliseconds. One lane (tid)
      // per span — virtual intervals of sibling DAG nodes overlap freely.
      os << ",{\"ph\":\"X\",\"pid\":2,\"tid\":" << span.id << ",\"ts\":"
         << FormatFull(span.virt_start * 1e6) << ",\"dur\":"
         << FormatFull((span.virt_end - span.virt_start) * 1e6)
         << ",\"name\":\"" << JsonEscape(span.name) << "\",\"args\":"
         << args_json(span) << "}";
    }
  }
  os << "]}";
  return os.str();
}

std::string Trace::ToText() const {
  const std::vector<TraceSpan> spans = this->spans();
  // Children in creation order.
  std::vector<std::vector<SpanId>> children(spans.size());
  std::vector<SpanId> roots;
  for (const TraceSpan& span : spans) {
    if (span.parent == kNoSpan) {
      roots.push_back(span.id);
    } else {
      children[static_cast<size_t>(span.parent)].push_back(span.id);
    }
  }
  std::ostringstream os;
  // Depth-first, matching PhysicalPlan::Explain()'s "+-" indentation.
  std::function<void(SpanId, int)> render = [&](SpanId id, int depth) {
    const TraceSpan& span = spans[static_cast<size_t>(id)];
    for (int i = 0; i < depth; ++i) os << "  ";
    os << "+- " << span.name << " ["
       << FormatMs(span.wall_end_us - span.wall_start_us) << " wall";
    if (span.virt_start >= 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), ", virt %.2fs..%.2fs", span.virt_start,
                    span.virt_end);
      os << buf;
    }
    os << "]";
    for (const auto& [key, value] : span.attrs) {
      os << ' ' << key << '=';
      if (value.size() > 48) {
        os << value.substr(0, 45) << "...";
      } else {
        os << value;
      }
    }
    os << '\n';
    for (SpanId child : children[static_cast<size_t>(id)]) {
      render(child, depth + 1);
    }
  };
  for (SpanId root : roots) render(root, 0);
  return os.str();
}

}  // namespace unify
