#ifndef UNIFY_COMMON_TRACE_H_
#define UNIFY_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace unify {

/// Identifier of one span inside a Trace (its index in creation order).
using SpanId = int64_t;
inline constexpr SpanId kNoSpan = -1;

/// One timed, attributed interval of a trace. Spans form a tree through
/// `parent`; both a wall-clock interval (microseconds since the trace
/// epoch, measured with a steady clock) and an optional *virtual-clock*
/// interval (the simulated seconds the scheduler assigns, Section III-C)
/// are recorded, because the two timelines tell different stories: wall
/// time is what this process spent, virtual time is what the modeled LLM
/// deployment would have spent.
struct TraceSpan {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  /// Wall-clock interval in microseconds since the trace epoch.
  double wall_start_us = 0;
  double wall_end_us = 0;
  /// Virtual-clock interval in seconds; negative when not assigned.
  double virt_start = -1;
  double virt_end = -1;
  /// Key/value attributes in insertion order (duplicate keys allowed; the
  /// exporters keep the last occurrence).
  std::vector<std::pair<std::string, std::string>> attrs;
  /// Small ordinal of the OS thread that opened the span.
  int tid = 0;
};

/// A thread-safe collector of hierarchical spans for one traced operation
/// (one `UnifySystem::Answer()` call). Spans are created with StartSpan /
/// ScopedSpan and can be annotated — including after they end, which the
/// executor uses to attach virtual-schedule times computed only once the
/// whole DAG has run.
///
/// Exports: Chrome trace-event JSON (`ToChromeJson`, loadable in
/// chrome://tracing and https://ui.perfetto.dev) and an indented
/// plain-text tree (`ToText`, the shell's `\trace` rendering).
class Trace {
 public:
  Trace();

  /// Opens a span; `parent == kNoSpan` makes a root span.
  SpanId StartSpan(std::string name, SpanId parent = kNoSpan);

  /// Closes the span (records its wall end time). Idempotent.
  void EndSpan(SpanId id);

  /// Attaches a key/value attribute. Valid any time after StartSpan.
  void AddAttr(SpanId id, const std::string& key, const std::string& value);
  void AddAttr(SpanId id, const std::string& key, const char* value) {
    AddAttr(id, key, std::string(value));
  }
  void AddAttr(SpanId id, const std::string& key, double value);
  void AddAttr(SpanId id, const std::string& key, int64_t value);
  void AddAttr(SpanId id, const std::string& key, int value) {
    AddAttr(id, key, static_cast<int64_t>(value));
  }
  void AddAttr(SpanId id, const std::string& key, bool value) {
    AddAttr(id, key, std::string(value ? "true" : "false"));
  }

  /// Assigns the span's interval on the virtual clock (seconds).
  void SetVirtualInterval(SpanId id, double start, double end);

  /// Snapshot of all spans recorded so far, in creation order.
  std::vector<TraceSpan> spans() const;

  size_t size() const;

  /// Chrome trace-event JSON ("JSON object format"): complete events on
  /// pid 1 ("wall clock") plus, for spans with a virtual interval, events
  /// on pid 2 ("virtual clock") whose timestamps are virtual seconds
  /// rendered as microseconds. See docs/observability.md for the schema.
  std::string ToChromeJson() const;

  /// Indented span tree with durations and attributes, one span per line.
  std::string ToText() const;

 private:
  double NowUs() const;
  int ThreadOrdinalLocked();

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<std::pair<std::thread::id, int>> tids_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII handle opening a span on construction and ending it on scope exit.
/// A default-constructed or null-trace ScopedSpan is a no-op, so call
/// sites stay unconditional: tracing disabled means `trace == nullptr`.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Trace* trace, std::string name, SpanId parent = kNoSpan)
      : trace_(trace),
        id_(trace == nullptr ? kNoSpan
                             : trace->StartSpan(std::move(name), parent)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }

  /// The underlying span id — pass as `parent` to child spans (including
  /// spans opened on other threads). kNoSpan when tracing is disabled.
  SpanId id() const { return id_; }

  template <typename T>
  void AddAttr(const std::string& key, const T& value) {
    if (trace_ != nullptr) trace_->AddAttr(id_, key, value);
  }

  void SetVirtualInterval(double start, double end) {
    if (trace_ != nullptr) trace_->SetVirtualInterval(id_, start, end);
  }

 private:
  Trace* trace_ = nullptr;
  SpanId id_ = kNoSpan;
};

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace unify

#endif  // UNIFY_COMMON_TRACE_H_
