#ifndef UNIFY_COMMON_METRICS_H_
#define UNIFY_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/stats.h"

namespace unify {

/// A point-in-time copy of a MetricsRegistry's contents. Counter deltas
/// between two snapshots isolate one operation's contribution (the
/// pattern `UnifySystem::Answer()` uses to attach per-query LLM totals to
/// its trace).
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  /// Histogram copies (bounded reservoirs — see Histogram in
  /// common/stats.h — so quantiles work on the snapshot and memory stays
  /// bounded in long-lived serving processes).
  std::map<std::string, Histogram> histograms;

  /// Counters minus `earlier`'s counters (absent = 0; zero deltas are
  /// dropped). Gauges and histograms keep their current values: they are
  /// level/distribution metrics, not monotone sums.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// One metric per line: `name value` for counters/gauges,
  /// `name count/mean/p50/p99` for histograms. Sorted by name.
  std::string ToText() const;

  /// Prometheus text exposition format (version 0.0.4). Metric names are
  /// sanitized to [a-zA-Z0-9_:] and prefixed with `unify_`; every metric
  /// gets `# HELP` and `# TYPE` lines. Counters expose as `counter`,
  /// gauges as `gauge`, histograms as `summary` with quantile 0.5/0.9/
  /// 0.99 series plus `_sum`/`_count`.
  ///
  /// Labeled series: a registry name of the form `base{key="value"}`
  /// (compose with LabeledMetricName so the value is escaped) renders as
  /// one `unify_base{key="value"}` sample; all samples of one base share
  /// a single HELP/TYPE header. Names without `{` render exactly as
  /// before — the unlabeled output is byte-identical.
  std::string ToPrometheusText() const;
};

/// Composes the registry name of a labeled series: `base{key="value"}`,
/// with `value` escaped per the Prometheus text format (`\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`). The per-tenant `tenant.*` series are
/// keyed this way (docs/observability.md, "Per-tenant accounting").
std::string LabeledMetricName(const std::string& base, const std::string& key,
                              const std::string& value);

/// A process-wide registry of named counters, gauges, and histograms —
/// the metrics side of the observability layer (spans live in
/// common/trace.h). Thread-safe; names are flat dotted strings from the
/// catalog in src/common/telemetry_names.h (documented in
/// docs/observability.md).
///
/// Metrics are cheap enough to record unconditionally: one mutex
/// acquisition and a map lookup per update, on paths that are dominated
/// by (virtual) LLM calls.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the counter (created at 0 on first use).
  void AddCounter(const std::string& name, double delta = 1.0);

  /// Sets the gauge's current value.
  void SetGauge(const std::string& name, double value);

  /// Records one observation into the histogram.
  void Observe(const std::string& name, double value);

  /// Current counter value; 0 if never touched.
  double counter(const std::string& name) const;

  /// Current gauge value; 0 if never set.
  double gauge(const std::string& name) const;

  MetricsSnapshot Snapshot() const;

  /// Drops every metric (tests; not used on serving paths).
  void Reset();

  /// The process-wide registry all instrumented components write to.
  static MetricsRegistry& Global();

  /// The calling thread's additional per-query sink (nullptr when none).
  /// Instrumented sites that use the Metric* free functions below write
  /// to Global() AND to this sink, which is how `QueryResult::metrics`
  /// stays exact under concurrent serving: each query installs its own
  /// local registry on every thread that works on it.
  static MetricsRegistry* ThreadSink();

  /// RAII installer for ThreadSink(). Restores the previous sink on
  /// destruction, so scopes nest (the per-query registry stays installed
  /// across nested spans). Pass nullptr to suppress sink writes inside
  /// the scope.
  class ScopedSink {
   public:
    explicit ScopedSink(MetricsRegistry* sink);
    ~ScopedSink();
    ScopedSink(const ScopedSink&) = delete;
    ScopedSink& operator=(const ScopedSink&) = delete;

   private:
    MetricsRegistry* prev_;
  };

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Record into the process-wide registry and, when one is installed, the
/// calling thread's per-query sink. All instrumented components use these
/// instead of calling MetricsRegistry::Global() directly so per-query
/// attribution works (docs/observability.md, "Per-query attribution").
void MetricAddCounter(const std::string& name, double delta = 1.0);
void MetricSetGauge(const std::string& name, double value);
void MetricObserve(const std::string& name, double value);

}  // namespace unify

#endif  // UNIFY_COMMON_METRICS_H_
