#ifndef UNIFY_COMMON_STRING_UTIL_H_
#define UNIFY_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace unify {

/// Splits `s` on `delim`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char delim);

/// Splits `s` on any whitespace run, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// ASCII lowercase copy.
std::string AsciiToLower(std::string_view s);

/// True iff `haystack` contains `needle` (case-sensitive).
bool StrContains(std::string_view haystack, std::string_view needle);

/// True iff `haystack` contains `needle` ignoring ASCII case.
bool StrContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// True iff `s` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces all occurrences of `from` with `to` in `s`.
std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to);

/// Parses the first integer appearing in `s` (optional sign), if any.
std::optional<int64_t> ParseLeadingInt64(std::string_view s);

/// Parses `s` entirely as an integer / double, if well-formed.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

/// Formats a double with `precision` significant decimal digits, trimming
/// trailing zeros ("3.1400" -> "3.14", "5.000" -> "5").
std::string FormatDouble(double v, int precision = 6);

}  // namespace unify

#endif  // UNIFY_COMMON_STRING_UTIL_H_
