#ifndef UNIFY_COMMON_RNG_H_
#define UNIFY_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace unify {

/// SplitMix64 step: a fast, high-quality 64-bit mixing function. Used for
/// seeding and for stateless hashing of identifiers.
uint64_t SplitMix64(uint64_t& state);

/// Stateless 64-bit hash of a byte string (FNV-1a finished with SplitMix64).
/// Stable across runs and platforms; every "LLM decision" in the simulator
/// hashes its inputs through this so results are reproducible.
uint64_t StableHash64(std::string_view data);

/// Combines two hashes (boost::hash_combine style, 64-bit).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// All randomness in the library flows through explicitly seeded `Rng`
/// instances, so every experiment is bit-for-bit reproducible.
class Rng {
 public:
  /// Seeds the generator. Two instances with the same seed produce the same
  /// stream on all platforms.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();
  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses the inverse-CDF over precomputable weights; O(n) per call is
  /// avoided by rejection-free cumulative search on demand for small n.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index in [0, weights.size()) proportional to `weights`.
  /// Non-positive total weight falls back to uniform.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from [0, n) (k <= n), in
  /// selection order (not sorted).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; stable for a given (seed, tag).
  Rng Fork(uint64_t tag) const;

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace unify

#endif  // UNIFY_COMMON_RNG_H_
