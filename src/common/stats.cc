#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace unify {

void SampleStats::Add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

void SampleStats::AddAll(const std::vector<double>& vs) {
  values_.insert(values_.end(), vs.begin(), vs.end());
  sorted_valid_ = false;
}

double SampleStats::sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double SampleStats::Mean() const {
  UNIFY_CHECK(!values_.empty());
  return sum() / static_cast<double>(values_.size());
}

double SampleStats::Min() const {
  UNIFY_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double SampleStats::Max() const {
  UNIFY_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double SampleStats::StdDev() const {
  if (values_.size() < 2) return 0.0;
  double m = Mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

void SampleStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleStats::Quantile(double q) const {
  UNIFY_CHECK(!values_.empty());
  EnsureSorted();
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  double pos = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

Histogram::Histogram(size_t capacity, uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity), rng_state_(seed) {}

uint64_t Histogram::NextRandom() {
  // splitmix64: tiny, deterministic, and statistically fine for
  // reservoir-slot selection.
  uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

void Histogram::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(v);
    sorted_valid_ = false;
    return;
  }
  // Algorithm R: the i-th observation (1-based) replaces a uniformly
  // random retained slot with probability capacity/i.
  size_t slot = static_cast<size_t>(NextRandom() % count_);
  if (slot < capacity_) {
    reservoir_[slot] = v;
    sorted_valid_ = false;
  }
}

double Histogram::Mean() const {
  UNIFY_CHECK(count_ > 0);
  return sum_ / static_cast<double>(count_);
}

double Histogram::Min() const {
  UNIFY_CHECK(count_ > 0);
  return min_;
}

double Histogram::Max() const {
  UNIFY_CHECK(count_ > 0);
  return max_;
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = reservoir_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Quantile(double q) const {
  UNIFY_CHECK(!reservoir_.empty());
  EnsureSorted();
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  double pos = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double QError(double estimate, double ground_truth) {
  double e = std::max(estimate, 1.0);
  double t = std::max(ground_truth, 1.0);
  return std::max(e / t, t / e);
}

}  // namespace unify
