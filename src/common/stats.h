#ifndef UNIFY_COMMON_STATS_H_
#define UNIFY_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace unify {

/// Accumulates a sample of doubles and reports summary statistics.
/// Quantiles use linear interpolation between order statistics (the same
/// convention as numpy's default), so results are stable and exact for the
/// sample sizes used in the experiments.
class SampleStats {
 public:
  SampleStats() = default;

  /// Adds one observation.
  void Add(double v);

  /// Adds many observations.
  void AddAll(const std::vector<double>& vs);

  size_t count() const { return values_.size(); }
  double sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Population standard deviation. Returns 0 for fewer than 2 samples.
  double StdDev() const;
  /// Quantile q in [0, 1]; q=0.5 is the median. Requires count() > 0.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  /// The raw values, in insertion order.
  const std::vector<double>& values() const { return values_; }

 private:
  /// Sorts lazily before quantile queries.
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// The q-error metric used for cardinality estimation quality (Section
/// VII-A): max(est/truth, truth/est). Both inputs are clamped below by 1 so
/// zero estimates/truths yield finite errors, matching common practice
/// (Leis et al.).
double QError(double estimate, double ground_truth);

}  // namespace unify

#endif  // UNIFY_COMMON_STATS_H_
