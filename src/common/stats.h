#ifndef UNIFY_COMMON_STATS_H_
#define UNIFY_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unify {

/// Accumulates a sample of doubles and reports summary statistics.
/// Quantiles use linear interpolation between order statistics (the same
/// convention as numpy's default), so results are stable and exact for the
/// sample sizes used in the experiments.
class SampleStats {
 public:
  SampleStats() = default;

  /// Adds one observation.
  void Add(double v);

  /// Adds many observations.
  void AddAll(const std::vector<double>& vs);

  size_t count() const { return values_.size(); }
  double sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Population standard deviation. Returns 0 for fewer than 2 samples.
  double StdDev() const;
  /// Quantile q in [0, 1]; q=0.5 is the median. Requires count() > 0.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  /// The raw values, in insertion order.
  const std::vector<double>& values() const { return values_; }

 private:
  /// Sorts lazily before quantile queries.
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// A bounded-memory distribution accumulator for long-lived registries
/// (the histogram type behind MetricsRegistry). count/sum/mean/min/max are
/// exact for the full observation stream. Quantiles are computed over a
/// retained sample: every observation while count() <= capacity (exact
/// quantiles), then a uniform random reservoir (Vitter's algorithm R)
/// driven by a fixed-seed splitmix64 stream, so a given observation
/// sequence always yields the same quantiles. Above the capacity,
/// Quantile(q) is an unbiased estimate over `capacity` uniformly chosen
/// observations, not an exact order statistic.
class Histogram {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit Histogram(size_t capacity = kDefaultCapacity,
                     uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Adds one observation.
  void Add(double v);

  /// Total observations ever added (exact, unaffected by the reservoir).
  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const;
  double Min() const;
  double Max() const;
  /// Quantile q in [0, 1] over the retained sample. Requires count() > 0.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  /// Observations currently retained for quantile queries
  /// (== min(count(), capacity)).
  size_t retained() const { return reservoir_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  void EnsureSorted() const;
  uint64_t NextRandom();

  size_t capacity_;
  uint64_t rng_state_;
  size_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> reservoir_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// The q-error metric used for cardinality estimation quality (Section
/// VII-A): max(est/truth, truth/est). Both inputs are clamped below by 1 so
/// zero estimates/truths yield finite errors, matching common practice
/// (Leis et al.).
double QError(double estimate, double ground_truth);

}  // namespace unify

#endif  // UNIFY_COMMON_STATS_H_
