#ifndef UNIFY_COMMON_TELEMETRY_NAMES_H_
#define UNIFY_COMMON_TELEMETRY_NAMES_H_

namespace unify::telemetry {

// The complete catalog of span and metric names the system emits. Every
// instrumented call site names its span/metric through one of these
// constants, so this header is the single source of truth;
// scripts/check_docs.sh greps it and fails the build if any name here is
// missing from docs/observability.md.

// --- Span names (common/trace.h; taxonomy in docs/observability.md) ---

/// Root span of one UnifySystem::Answer() call.
inline constexpr char kSpanQuery[] = "query";
/// Logical plan generation (PlanGenerator::Generate, Section V).
inline constexpr char kSpanPlanLogical[] = "plan.logical";
/// One accepted reduction step of the DFS (child of plan.logical or of
/// the enclosing plan.reduce — the span tree mirrors the search tree).
inline constexpr char kSpanPlanReduce[] = "plan.reduce";
/// Fallback-plan construction when no reduction path succeeded (V-D).
inline constexpr char kSpanPlanFallback[] = "plan.fallback";
/// Physical optimization + plan selection (PhysicalOptimizer::SelectBest).
inline constexpr char kSpanPlanPhysical[] = "plan.physical";
/// Lowering/costing of one candidate logical plan (Optimize()).
inline constexpr char kSpanOptimizeCandidate[] = "optimize.candidate";
/// One semantic/numeric cardinality estimation (EstimateCondition).
inline constexpr char kSpanSceEstimate[] = "sce.estimate";
/// Plan execution (PlanExecutor::Execute, Section III-C).
inline constexpr char kSpanExecute[] = "execute";
/// One DAG node's operator execution (wall interval = real work; virtual
/// interval = its slot on the simulated schedule).
inline constexpr char kSpanExecNode[] = "exec.node";
/// One morsel of a partitioned operator (child of its exec.node): an
/// independent LLM stream over a whole-batch chunk of the node's input.
inline constexpr char kSpanExecPartition[] = "exec.partition";
/// Executor-level replanning after a terminal operator failure.
inline constexpr char kSpanExecFallback[] = "exec.fallback";
/// One mid-query re-optimization pause (docs/replanning.md).
inline constexpr char kSpanExecReplan[] = "exec.replan";
/// One query served through UnifyService (parent of its "query" span).
inline constexpr char kSpanServeQuery[] = "serve.query";

// --- Metric names (common/metrics.h; catalog in docs/observability.md) ---

// Planning (counters).
inline constexpr char kMetricPlanReductions[] = "plan.reductions";
inline constexpr char kMetricPlanBacktracks[] = "plan.backtracks";
inline constexpr char kMetricPlanWidenings[] = "plan.widenings";
inline constexpr char kMetricPlanUnresolved[] = "plan.unresolved";

// Semantic cardinality estimation (counters).
inline constexpr char kMetricSceEstimates[] = "sce.estimates";
inline constexpr char kMetricSceSamples[] = "sce.samples";
inline constexpr char kMetricSceLlmSeconds[] = "sce.llm_seconds";

// Execution.
inline constexpr char kMetricExecNodes[] = "exec.nodes";
inline constexpr char kMetricExecAdjustments[] = "exec.adjustments";
/// Histogram: per-node virtual seconds spent waiting for a free LLM
/// server (schedule finish - ready - cpu - llm stream).
inline constexpr char kMetricExecQueueWait[] = "exec.queue_wait_seconds";
/// Gauge: LLM-server busy fraction of the last executed plan
/// (llm_seconds_total / (num_servers * makespan)).
inline constexpr char kMetricExecPoolOccupancy[] = "exec.pool.occupancy";
/// Counter: morsels executed by partitioned operators (incremented by the
/// partition count of every node that actually split).
inline constexpr char kMetricExecPartitions[] = "exec.partitions";
/// Histogram: wall-clock seconds spent merging a partitioned node's
/// partial results into its output value.
inline constexpr char kMetricExecPartitionMerge[] =
    "exec.partition.merge_seconds";

// LLM layer. The per-type counters append "." + PromptTypeName(type)
// (e.g. "llm.seconds.eval_predicate"); TracingLlmClient emits them.
inline constexpr char kMetricLlmCalls[] = "llm.calls";
inline constexpr char kMetricLlmInTokens[] = "llm.in_tokens";
inline constexpr char kMetricLlmOutTokens[] = "llm.out_tokens";
inline constexpr char kMetricLlmSeconds[] = "llm.seconds";
inline constexpr char kMetricLlmDollars[] = "llm.dollars";
/// Histogram: virtual seconds of individual LLM calls.
inline constexpr char kMetricLlmCallSeconds[] = "llm.call_seconds";
// Per-document memoization (SharedLlmCache in llm/shared_cache.h, and the
// legacy CachingLlmClient decorator; catalog in docs/caching.md).
inline constexpr char kMetricLlmCacheHits[] = "llm.cache.item_hits";
inline constexpr char kMetricLlmCacheMisses[] = "llm.cache.item_misses";
/// Counter: items that followed a concurrent identical call's leader
/// instead of re-paying the base call (singleflight coalescing).
inline constexpr char kMetricLlmCacheCoalesced[] = "llm.cache.coalesced";
/// Counter: entries dropped by the shared cache's LRU capacity bounds.
inline constexpr char kMetricLlmCacheEvictions[] = "llm.cache.evictions";
/// Gauge: approximate resident bytes of the shared cache.
inline constexpr char kMetricLlmCacheBytes[] = "llm.cache.bytes";

// Fault injection (FaultInjectingLlmClient in llm/fault_client.h; catalog
// in docs/resilience.md). The per-kind counters append "." +
// PromptTypeName(type) like the llm.* family.
/// Counter family: injected provider timeouts (kDeadlineExceeded).
inline constexpr char kMetricLlmFaultTimeouts[] = "llm.fault.timeouts";
/// Counter family: injected rate-limit rejections (kResourceExhausted).
inline constexpr char kMetricLlmFaultRateLimits[] = "llm.fault.rate_limits";
/// Counter family: injected malformed/truncated completions (kAborted).
inline constexpr char kMetricLlmFaultMalformed[] = "llm.fault.malformed";

// Resilient execution (ResilientLlmClient in llm/resilient_client.h;
// semantics in docs/resilience.md).
/// Counter: retry attempts issued (beyond each call's first attempt).
inline constexpr char kMetricLlmRetryAttempts[] = "llm.retry.attempts";
/// Counter: calls that ultimately succeeded after >= 1 retry.
inline constexpr char kMetricLlmRetryRecovered[] = "llm.retry.recovered";
/// Counter: calls that failed with retries/budget exhausted.
inline constexpr char kMetricLlmRetryExhausted[] = "llm.retry.exhausted";
/// Counter: virtual seconds spent sleeping in backoff (incl. jitter).
inline constexpr char kMetricLlmRetryBackoffSeconds[] =
    "llm.retry.backoff_seconds";
/// Counter: hedged (duplicate) requests launched for stragglers.
inline constexpr char kMetricLlmHedgeLaunched[] = "llm.hedge.launched";
/// Counter: hedges that finished before the primary and won the call.
inline constexpr char kMetricLlmHedgeWins[] = "llm.hedge.wins";
/// Counter: dollars charged to cancelled hedge losers (partial cost of
/// the abandoned attempt up to the winner's completion).
inline constexpr char kMetricLlmHedgeCancelledDollars[] =
    "llm.hedge.cancelled_dollars";

// Circuit breaker (per model tier; the counters append "." + "planner" or
// "." + "worker").
/// Counter family: breaker transitions into the open state.
inline constexpr char kMetricBreakerOpens[] = "breaker.opens";
/// Counter family: calls rejected fast-fail while the breaker was open.
inline constexpr char kMetricBreakerRejected[] = "breaker.rejected";
/// Counter family: half-open probe calls admitted.
inline constexpr char kMetricBreakerProbes[] = "breaker.probes";
/// Counter family: transitions back to closed after a successful probe.
inline constexpr char kMetricBreakerCloses[] = "breaker.closes";

// Serving layer (UnifyService).
/// Counter: requests accepted into the serving queue.
inline constexpr char kMetricServeSubmitted[] = "serve.submitted";
/// Counter: requests rejected by admission control (queue full).
inline constexpr char kMetricServeRejected[] = "serve.rejected";
/// Counter: served queries that failed their deadline.
inline constexpr char kMetricServeDeadlineExceeded[] =
    "serve.deadline_exceeded";
/// Histogram: wall-clock seconds a request waited for a free worker.
inline constexpr char kMetricServeQueueWait[] = "serve.queue_wait_seconds";
/// Gauge: queries currently being planned/executed by workers.
inline constexpr char kMetricServeInflight[] = "serve.inflight";
/// Counter: served queries whose execution replanned mid-flight (plan
/// adjustment or executor fallback).
inline constexpr char kMetricServeReplans[] = "serve.replans";
/// Counter: served queries that completed degraded (QueryPhase::kDegraded
/// — a partial/fallback answer surfaced instead of a hard failure).
inline constexpr char kMetricServeDegraded[] = "serve.degraded";
/// Gauge: wall-clock seconds since the UnifyService was constructed
/// (refreshed on every completion, stats() call, and /metrics scrape).
inline constexpr char kMetricServeUptime[] = "serve.uptime_seconds";

// Fair scheduler (core/runtime/fair_scheduler.h; emitted only when
// UnifyService runs with Options::scheduler = kFair — the FIFO path stays
// byte-identical to pre-scheduler builds).
/// Counter: tasks handed to a worker by the DRR wheel.
inline constexpr char kMetricSchedDispatches[] = "serve.sched.dispatches";
/// Counter: requests rejected by a tenant's queue-depth cap (before the
/// global max_queue_depth trips for everyone).
inline constexpr char kMetricSchedTenantRejects[] =
    "serve.sched.tenant_rejects";
/// Counter: queued requests shed because their deadline could no longer
/// be met (now >= arrival + deadline on the virtual clock).
inline constexpr char kMetricSchedSheds[] = "serve.sched.sheds";
/// Counter: full refill passes over a priority tier's DRR wheel that
/// dispatched nothing (fractional weights accumulating or every tenant at
/// its concurrency cap).
inline constexpr char kMetricSchedWheelRotations[] =
    "serve.sched.wheel_rotations";
/// Gauge: tasks currently queued in the scheduler (all tiers).
inline constexpr char kMetricSchedQueued[] = "serve.sched.queued";
/// Histogram family: wall-clock seconds a dispatched task sat queued, per
/// priority class — the full name appends "." + QueryPriorityName (e.g.
/// "serve.sched.queue_seconds.interactive").
inline constexpr char kMetricSchedQueueSeconds[] =
    "serve.sched.queue_seconds";

// SLO tracker (core/runtime/slo_tracker.h; "SLOs" in
// docs/observability.md). A served query is SLO-good when it succeeded
// AND finished within Options::slo_latency_seconds (latency objective
// 0 = availability only).
/// Counter: served queries that met the SLO.
inline constexpr char kMetricSloGood[] = "serve.slo.good";
/// Counter: served queries that missed the SLO.
inline constexpr char kMetricSloBad[] = "serve.slo.bad";
/// Gauge: error-budget burn rate over the fast (minutes) window —
/// bad fraction / (1 - slo_target); 1.0 = burning exactly the budget.
inline constexpr char kMetricSloBurnRateFast[] = "serve.slo.burn_rate_fast";
/// Gauge: burn rate over the slow (hour-scale) window.
inline constexpr char kMetricSloBurnRateSlow[] = "serve.slo.burn_rate_slow";

// Per-tenant usage ledger (core/runtime/tenant_ledger.h; "Per-tenant
// accounting" in docs/observability.md). Each base name below is exported
// from /metrics as a labeled series `unify_tenant_*{tenant="..."}` — one
// sample per QueryRequest::client_tag — via MetricsSnapshot's labeled-
// series support; they are not plain registry counters.
/// Counter series: queries completed for the tenant.
inline constexpr char kMetricTenantQueries[] = "tenant.queries";
/// Counter series: the tenant's admission-control rejections.
inline constexpr char kMetricTenantRejected[] = "tenant.rejected";
/// Counter series: the tenant's served queries that failed (non-OK
/// status, deadline misses included).
inline constexpr char kMetricTenantFailed[] = "tenant.failed";
/// Counter series: the tenant's deadline misses.
inline constexpr char kMetricTenantDeadlineMisses[] =
    "tenant.deadline_misses";
/// Counter series: the tenant's degraded completions.
inline constexpr char kMetricTenantDegraded[] = "tenant.degraded";
/// Counter series: LLM dollars attributed to the tenant (exact per-query
/// attribution, planning + execution + SCE).
inline constexpr char kMetricTenantDollars[] = "tenant.dollars";
/// Counter series: LLM input tokens attributed to the tenant.
inline constexpr char kMetricTenantInTokens[] = "tenant.in_tokens";
/// Counter series: LLM output tokens attributed to the tenant.
inline constexpr char kMetricTenantOutTokens[] = "tenant.out_tokens";
/// Counter series: LLM calls attributed to the tenant.
inline constexpr char kMetricTenantLlmCalls[] = "tenant.llm_calls";
/// Counter series: the tenant's shared-cache item hits.
inline constexpr char kMetricTenantCacheHits[] = "tenant.cache_item_hits";
/// Counter series: the tenant's singleflight-coalesced items.
inline constexpr char kMetricTenantCacheCoalesced[] =
    "tenant.cache_coalesced";
/// Summary series: the tenant's total (virtual) query latency.
inline constexpr char kMetricTenantLatency[] = "tenant.latency_seconds";

// Prediction accuracy (AccuracyLedger in common/accuracy.h mirrors these
// into the metrics registry; see "Prediction accuracy" in
// docs/observability.md).
/// Histogram family: SCE q-error per estimation method — the full name
/// appends "." + SceMethodName (e.g. "sce.qerror.importance"). Observed
/// against the simulated corpus's latent ground truth at estimation time.
inline constexpr char kMetricSceQError[] = "sce.qerror";
/// Histogram: per-executed-node q-error of the optimizer's output-
/// cardinality estimate vs the cardinality execution actually produced.
inline constexpr char kMetricCardQError[] = "card.qerror";
/// Histogram: |predicted - measured| / measured execution makespan.
inline constexpr char kMetricMakespanRelError[] = "plan.makespan_rel_error";
/// Histogram: |predicted - measured| / measured execution dollars.
inline constexpr char kMetricDollarsRelError[] = "plan.dollars_rel_error";
/// Counter family: physical implementation chosen per executed node — the
/// full name appends "." + PhysicalImplName.
inline constexpr char kMetricImplChosen[] = "plan.impl_chosen";
/// Counter: executed nodes whose chosen impl is still the cost-model
/// argmin when re-costed with the measured cardinalities (hindsight).
inline constexpr char kMetricImplChoiceOptimal[] = "plan.impl_choice.optimal";
/// Counter: executed nodes where hindsight re-costing prefers another impl.
inline constexpr char kMetricImplChoiceSuboptimal[] =
    "plan.impl_choice.suboptimal";

// Mid-query re-optimization (docs/replanning.md). The pipeline considers
// a replan whenever a materialized node's cardinality q-error reaches the
// configured threshold; a considered replan always pays the planner-tier
// decision call, whether or not the re-lowered suffix is adopted.
/// Counter: replans considered (q-error trigger fired and the replan
/// budget still had room).
inline constexpr char kMetricReplanConsidered[] = "plan.reoptimize.considered";
/// Counter: considered replans whose re-lowered suffix was adopted.
inline constexpr char kMetricReplanTriggered[] = "plan.reoptimize.triggered";
/// Counter: adopted replans whose measured suffix cost came in under the
/// pre-replan suffix estimate (audited at query completion).
inline constexpr char kMetricReplanImproved[] = "plan.reoptimize.improved";

// Serving flight-recorder event kinds (core/runtime/flight_recorder.h;
// rendered by ServeEventKindName and in the `kind` field of the JSONL
// export; see "Flight recorder" in docs/observability.md).
inline constexpr char kEventAdmit[] = "admit";
inline constexpr char kEventStart[] = "start";
inline constexpr char kEventComplete[] = "complete";
inline constexpr char kEventReject[] = "reject";
inline constexpr char kEventDeadlineMiss[] = "deadline_miss";
inline constexpr char kEventReplan[] = "replan";
inline constexpr char kEventDegraded[] = "degraded";
/// The SLO tracker's fast+slow burn rates crossed the breach threshold
/// (edge-triggered: recorded when the breach starts, not per query).
inline constexpr char kEventSloBreach[] = "slo_breach";
/// A queued request was shed by the fair scheduler because its deadline
/// could no longer be met (fair mode only).
inline constexpr char kEventShed[] = "shed";
/// A request was rejected by its tenant's queue-depth cap (fair mode
/// only; distinct from the global-queue "reject").
inline constexpr char kEventTenantReject[] = "tenant_reject";

}  // namespace unify::telemetry

#endif  // UNIFY_COMMON_TELEMETRY_NAMES_H_
