#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace unify {

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StrContains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StrContainsIgnoreCase(std::string_view haystack,
                           std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto lower = [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  };
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::optional<int64_t> ParseLeadingInt64(std::string_view s) {
  size_t i = 0;
  while (i < s.size() && !std::isdigit(static_cast<unsigned char>(s[i])) &&
         s[i] != '-')
    ++i;
  if (i == s.size()) return std::nullopt;
  bool neg = false;
  if (s[i] == '-') {
    neg = true;
    ++i;
    if (i == s.size() || !std::isdigit(static_cast<unsigned char>(s[i])))
      return std::nullopt;
  }
  int64_t v = 0;
  bool any = false;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    v = v * 10 + (s[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return std::nullopt;
  return neg ? -v : v;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = (s[0] == '-');
    i = 1;
  }
  if (i == s.size()) return std::nullopt;
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
    v = v * 10 + (s[i] - '0');
  }
  return neg ? -v : v;
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (out[last] == '.') last -= 1;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace unify
