#ifndef UNIFY_TEXT_KEYWORD_MATCHER_H_
#define UNIFY_TEXT_KEYWORD_MATCHER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace unify::text {

/// Matches documents against keyword queries on stemmed content tokens.
/// This is the pre-programmed (non-LLM) implementation backing Filter and
/// Extract: it can only see surface text, so it succeeds exactly when the
/// relevant words literally appear in the document — the paper's contrast
/// with LLM-based semantic filtering.
class KeywordMatcher {
 public:
  /// Builds a matcher for `phrase`; its stemmed content tokens become the
  /// keyword set.
  explicit KeywordMatcher(std::string_view phrase);

  /// True iff every keyword occurs (stemmed) in `text`.
  bool MatchesAll(std::string_view text) const;

  /// True iff at least one keyword occurs (stemmed) in `text`.
  bool MatchesAny(std::string_view text) const;

  /// Fraction of keywords present in `text`, in [0, 1]. Empty keyword sets
  /// yield 1.0 (vacuous truth).
  double MatchFraction(std::string_view text) const;

  const std::vector<std::string>& keywords() const { return keywords_; }

 private:
  std::vector<std::string> keywords_;
};

/// Counts occurrences of stemmed `keyword` in `text`.
size_t CountKeyword(std::string_view text, std::string_view keyword);

}  // namespace unify::text

#endif  // UNIFY_TEXT_KEYWORD_MATCHER_H_
