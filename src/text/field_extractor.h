#ifndef UNIFY_TEXT_FIELD_EXTRACTOR_H_
#define UNIFY_TEXT_FIELD_EXTRACTOR_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace unify::text {

/// Pre-programmed extraction of structured fields from document prose.
///
/// Documents rendered by the corpus generator mention some attributes in
/// regular surface patterns ("It has been viewed 523 times.",
/// "Score: 12."). This extractor implements the paper's "Keyword/Regex
/// extraction" physical operator for Extract: it finds the number or phrase
/// that follows (or precedes) a field label, without any semantics.
class FieldExtractor {
 public:
  /// Extracts the integer associated with `field` in `doc_text`, if the text
  /// contains a recognizable pattern. Recognized patterns for a field named
  /// e.g. "views":
  ///   "<field>: <number>", "<number> <field>", "viewed <number> times",
  ///   "<field> of <number>".
  static std::optional<int64_t> ExtractInt(std::string_view doc_text,
                                           std::string_view field);

  /// Extracts the first quoted phrase after "<field>:" if present.
  static std::optional<std::string> ExtractPhrase(std::string_view doc_text,
                                                  std::string_view field);

  /// All integers appearing in the text, in order.
  static std::vector<int64_t> AllIntegers(std::string_view doc_text);
};

/// Splits prose into sentences on '.', '!', '?' boundaries (keeping
/// non-empty trimmed sentences). Used by RAG-style baselines that retrieve
/// sentence-level chunks.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace unify::text

#endif  // UNIFY_TEXT_FIELD_EXTRACTOR_H_
