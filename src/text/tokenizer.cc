#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

namespace unify::text {

namespace {

const std::unordered_set<std::string>& StopwordSet() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "a",     "an",    "and",   "are",   "as",    "at",    "be",    "been",
      "but",   "by",    "can",   "did",   "do",    "does",  "for",   "from",
      "had",   "has",   "have",  "how",   "i",     "if",    "in",    "into",
      "is",    "it",    "its",   "of",    "on",    "or",    "over",  "s",
      "so",    "than",  "that",  "the",   "their", "them",  "then",  "there",
      "these", "they",  "this",  "those", "to",    "was",   "we",    "were",
      "what",  "when",  "where", "which", "who",   "whose", "why",   "will",
      "with",  "would", "you",   "your",  "also",  "about", "after", "before",
      "among", "any",   "each",  "such",  "very",  "not",   "no",    "only",
      "out",   "up",    "down",  "more",  "most",  "some",  "all",   "other",
  };
  return *kSet;
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

bool IsStopword(std::string_view token) {
  return StopwordSet().count(std::string(token)) > 0;
}

std::vector<std::string> ContentTokens(std::string_view s) {
  std::vector<std::string> out;
  for (auto& tok : Tokenize(s)) {
    if (tok.size() <= 1) continue;
    if (IsStopword(tok)) continue;
    out.push_back(std::move(tok));
  }
  return out;
}

std::string Stem(std::string_view token) {
  std::string t(token);
  auto ends_with = [&](std::string_view suf) {
    return t.size() >= suf.size() &&
           std::string_view(t).substr(t.size() - suf.size()) == suf;
  };
  auto chop = [&](size_t n) { t.erase(t.size() - n); };

  if (t.size() > 4 && ends_with("ies")) {
    chop(3);
    t.push_back('y');  // injuries -> injury
    return t;
  }
  if (t.size() > 5 && ends_with("ing")) {
    chop(3);  // training -> train
    // Undouble final consonant: running -> run.
    if (t.size() >= 3 && t[t.size() - 1] == t[t.size() - 2] &&
        t[t.size() - 1] != 'l' && t[t.size() - 1] != 's') {
      chop(1);
    }
    return t;
  }
  if (t.size() > 4 && ends_with("ed")) {
    chop(2);  // injured -> injur
    return t;
  }
  if (t.size() > 3 && ends_with("es")) {
    chop(2);  // matches -> match
    return t;
  }
  if (t.size() > 3 && ends_with("s") && !ends_with("ss")) {
    chop(1);  // sports -> sport
    return t;
  }
  if (t.size() > 5 && ends_with("ly")) {
    chop(2);
    return t;
  }
  return t;
}

std::vector<std::string> StemmedContentTokens(std::string_view s) {
  std::vector<std::string> out;
  for (auto& tok : ContentTokens(s)) out.push_back(Stem(tok));
  return out;
}

}  // namespace unify::text
