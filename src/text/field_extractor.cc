#include "text/field_extractor.h"

#include <cctype>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace unify::text {

namespace {

// Finds `needle` in `haystack` at or after `from`, ignoring case.
std::optional<size_t> FindIgnoreCase(std::string_view haystack,
                                     std::string_view needle,
                                     size_t from = 0) {
  if (needle.empty()) return from;
  auto lower = [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  };
  for (size_t i = from; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (size_t j = 0; j < needle.size(); ++j) {
      if (lower(haystack[i + j]) != lower(needle[j])) {
        match = false;
        break;
      }
    }
    if (match) return i;
  }
  return std::nullopt;
}

// Parses the first integer at or after position `pos`, within `max_gap`
// characters.
std::optional<int64_t> IntNear(std::string_view s, size_t pos,
                               size_t max_gap) {
  size_t limit = std::min(s.size(), pos + max_gap);
  for (size_t i = pos; i < limit; ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      int64_t v = 0;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        v = v * 10 + (s[i] - '0');
        ++i;
      }
      return v;
    }
  }
  return std::nullopt;
}

// Parses the integer that ends immediately before `pos` (allowing a small
// gap of spaces/punctuation).
std::optional<int64_t> IntBefore(std::string_view s, size_t pos) {
  size_t i = pos;
  size_t gap = 0;
  while (i > 0 && !std::isdigit(static_cast<unsigned char>(s[i - 1]))) {
    --i;
    if (++gap > 3) return std::nullopt;
  }
  if (i == 0) return std::nullopt;
  size_t end = i;
  while (i > 0 && std::isdigit(static_cast<unsigned char>(s[i - 1]))) --i;
  int64_t v = 0;
  for (size_t j = i; j < end; ++j) v = v * 10 + (s[j] - '0');
  return v;
}

}  // namespace

std::optional<int64_t> FieldExtractor::ExtractInt(std::string_view doc_text,
                                                  std::string_view field) {
  std::string stem = Stem(AsciiToLower(field));
  // Pattern "viewed 523 times" / "answered 3 times": verb form of the field.
  // Try the raw field first: "<field>: N", "<field> of N", "<field> N".
  std::vector<std::string> labels = {std::string(field), stem};
  if (stem == "view") labels.push_back("viewed");
  if (stem == "answer") labels.push_back("answered");
  if (stem == "vote" || stem == "upvote") labels.push_back("upvoted");
  for (const auto& label : labels) {
    // Prose may mention the label word without a value ("they scored on
    // the power play"); scan every occurrence until one carries a number.
    size_t from = 0;
    while (true) {
      auto pos = FindIgnoreCase(doc_text, label, from);
      if (!pos.has_value()) break;
      // Number immediately before the label ("3 answers", "220 words") —
      // checked first so "It has 3 answers and 7 comments" resolves
      // "answers" to 3, not 7.
      auto before = IntBefore(doc_text, *pos);
      if (before.has_value()) return before;
      // Number after the label ("Score: 12", "viewed 523 times").
      auto after = IntNear(doc_text, *pos + label.size(), 12);
      if (after.has_value()) return after;
      from = *pos + 1;
    }
  }
  return std::nullopt;
}

std::optional<std::string> FieldExtractor::ExtractPhrase(
    std::string_view doc_text, std::string_view field) {
  std::string label = std::string(field) + ":";
  auto pos = FindIgnoreCase(doc_text, label);
  if (!pos.has_value()) return std::nullopt;
  size_t start = *pos + label.size();
  while (start < doc_text.size() &&
         std::isspace(static_cast<unsigned char>(doc_text[start])))
    ++start;
  size_t end = start;
  while (end < doc_text.size() && doc_text[end] != '.' &&
         doc_text[end] != '\n' && doc_text[end] != ';')
    ++end;
  if (end <= start) return std::nullopt;
  return std::string(StripAsciiWhitespace(doc_text.substr(start, end - start)));
}

std::vector<int64_t> FieldExtractor::AllIntegers(std::string_view doc_text) {
  std::vector<int64_t> out;
  size_t i = 0;
  while (i < doc_text.size()) {
    if (std::isdigit(static_cast<unsigned char>(doc_text[i]))) {
      int64_t v = 0;
      while (i < doc_text.size() &&
             std::isdigit(static_cast<unsigned char>(doc_text[i]))) {
        v = v * 10 + (doc_text[i] - '0');
        ++i;
      }
      out.push_back(v);
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '.' || text[i] == '!' || text[i] == '?') {
      auto sent = StripAsciiWhitespace(text.substr(start, i - start + 1));
      if (!sent.empty()) out.emplace_back(sent);
      start = i + 1;
    }
  }
  auto tail = StripAsciiWhitespace(text.substr(start));
  if (!tail.empty()) out.emplace_back(tail);
  return out;
}

}  // namespace unify::text
