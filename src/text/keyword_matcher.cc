#include "text/keyword_matcher.h"

#include "text/tokenizer.h"

namespace unify::text {

KeywordMatcher::KeywordMatcher(std::string_view phrase)
    : keywords_(StemmedContentTokens(phrase)) {}

namespace {

std::unordered_set<std::string> StemSet(std::string_view text) {
  std::unordered_set<std::string> set;
  for (auto& t : StemmedContentTokens(text)) set.insert(std::move(t));
  return set;
}

}  // namespace

bool KeywordMatcher::MatchesAll(std::string_view text) const {
  if (keywords_.empty()) return true;
  auto set = StemSet(text);
  for (const auto& k : keywords_) {
    if (set.count(k) == 0) return false;
  }
  return true;
}

bool KeywordMatcher::MatchesAny(std::string_view text) const {
  if (keywords_.empty()) return true;
  auto set = StemSet(text);
  for (const auto& k : keywords_) {
    if (set.count(k) > 0) return true;
  }
  return false;
}

double KeywordMatcher::MatchFraction(std::string_view text) const {
  if (keywords_.empty()) return 1.0;
  auto set = StemSet(text);
  size_t hit = 0;
  for (const auto& k : keywords_) {
    if (set.count(k) > 0) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(keywords_.size());
}

size_t CountKeyword(std::string_view text, std::string_view keyword) {
  std::string stem = Stem(std::string(keyword));
  size_t n = 0;
  for (auto& t : StemmedContentTokens(text)) {
    if (t == stem) ++n;
  }
  return n;
}

}  // namespace unify::text
