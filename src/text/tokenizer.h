#ifndef UNIFY_TEXT_TOKENIZER_H_
#define UNIFY_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace unify::text {

/// Splits `s` into lowercase word tokens. A token is a maximal run of
/// alphanumeric characters; punctuation separates tokens. "Don't" yields
/// {"don", "t"}; "2000-2010" yields {"2000", "2010"}.
std::vector<std::string> Tokenize(std::string_view s);

/// True for high-frequency English function words that carry no topical
/// signal ("the", "of", "and", ...). Used by the bag-of-words embedder and
/// keyword matcher to focus on content words.
bool IsStopword(std::string_view token);

/// Tokenize + drop stopwords + drop single-character tokens.
std::vector<std::string> ContentTokens(std::string_view s);

/// A light stemmer: strips common English suffixes ("-ing", "-ed", "-es",
/// "-s", "-ly") with guards against over-stripping short words. Not a full
/// Porter stemmer, but enough for keyword matching across inflections
/// ("training" ~ "train", "injuries" -> "injuri"/"injury" handled via the
/// "ies"->"y" rule).
std::string Stem(std::string_view token);

/// Content tokens, stemmed.
std::vector<std::string> StemmedContentTokens(std::string_view s);

}  // namespace unify::text

#endif  // UNIFY_TEXT_TOKENIZER_H_
